// Session-side support for shard migration (package internal/shard's
// rebalance subsystem): when a region is split or merged, the live objects
// of its old session are re-admitted into fresh sessions at their original
// timestamps. Three pieces of session state need explicit handling that
// ordinary admission cannot provide:
//
//   - liveness: only objects that can still affect future matching move —
//     exactly the complement of the retirement dead-predicate at the
//     current clock (WorkerLive/TaskLive);
//   - already-emitted expiries: in AssumeGuide mode an unmatched object
//     stays live past its deadline, but its expiry event was already
//     emitted by the old session; re-admitting it must not enqueue a
//     second deadline entry (AddMigratedWorker/AddMigratedTask);
//   - receipt invalidation: admission receipts name (shard, handle, epoch)
//     and migration renumbers all three, so every post-migration session
//     starts its epoch above anything the old topology ever issued
//     (SetEpochFloor), making stale receipts fail the epoch check instead
//     of silently addressing an unrelated object.
package sim

import "ftoa/internal/model"

// AddMigratedWorker admits a worker whose lifecycle began in another
// session. It is exactly AddWorker except that when expiryFired is set —
// the old session already emitted the worker's deadline expiry — no expiry
// entry is enqueued, so the event is not emitted a second time.
func (s *Session) AddMigratedWorker(w model.Worker, expiryFired bool) (int, error) {
	return s.addWorker(w, !expiryFired)
}

// AddMigratedTask is AddTask with AddMigratedWorker's expiry semantics.
func (s *Session) AddMigratedTask(t model.Task, expiryFired bool) (int, error) {
	return s.addTask(t, !expiryFired)
}

// WorkerLive reports whether worker h can still affect future matching:
// the complement of the retirement dead-predicate at the current clock.
// In Strict mode an expired worker is dead; in AssumeGuide an unmatched
// worker stays live (matchable) forever.
func (s *Session) WorkerLive(h int) bool { return !s.workerDead(h, s.now) }

// TaskLive is WorkerLive for tasks.
func (s *Session) TaskLive(h int) bool { return !s.taskDead(h, s.now) }

// SetEpochFloor raises the session's arena epoch to at least e. Retirement
// bumps the epoch organically; migration uses the floor so that handles
// receipted by any pre-migration session can never pass a fresh session's
// epoch check.
func (s *Session) SetEpochFloor(e uint64) {
	if e > s.epoch {
		s.epoch = e
	}
}
