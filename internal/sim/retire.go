package sim

import "ftoa/internal/model"

// Retirement — the generational compaction that makes truly long-lived
// sessions possible. The session arenas are append-only between epochs
// (handles are dense indexes, the property every algorithm's flat-slice
// state relies on), so a serving process's memory would otherwise grow
// with lifetime admissions rather than live objects. Session.Retire ends
// the current epoch: it drops every object that is provably dead — it can
// never participate in a future match and the platform will never need
// its ground truth again — left-compacts the survivors (preserving
// relative handle order), and pushes the old→new handle mapping through
// every structure that speaks handles: the algorithm's per-object state
// (via the RetirableAlgorithm hook), the platform deadline queues, the
// undrained tail of the lifecycle event arena, and the committed
// matching.
//
// "Provably dead" is mode-aware, mirroring the availability boundaries:
//
//   - a matched object is dead the instant its pair commits (TryMatch
//     refuses rematches in both modes), and a withdrawn object (see
//     withdraw.go) is dead the instant it is retracted;
//   - in Strict mode an unmatched worker is dead once the clock reaches
//     its deadline (WorkerAvailable requires now < deadline) and an
//     unmatched task once the clock strictly passes its deadline
//     (TaskAvailable allows now <= deadline);
//   - in AssumeGuide mode deadlines are not enforced, so an unmatched
//     object is never dead and is always kept — the paper's counting
//     assumption means only matched objects retire.
//
// Because only dead objects are dropped, retirement is behaviour-neutral:
// a retired run commits the same pairs and emits the same expiries as an
// unretired one (asserted oracle-style across all six algorithms in
// internal/core's retire parity tests). The one observable difference is
// the handle namespace itself: handles are only stable within an epoch,
// and Epoch() counts the boundaries.

// RetirableAlgorithm is implemented by algorithms whose per-object state
// can survive an arena compaction. Session.Retire refuses to drop
// anything when the bound algorithm does not implement it, so plain
// Algorithm implementations keep the append-only handle guarantee they
// were written against.
type RetirableAlgorithm interface {
	Algorithm
	// Remap is invoked from Session.Retire after the platform arenas have
	// compacted: workers[old] (resp. tasks[old]) is the new handle of the
	// object previously known as old, or RetiredHandle if it was dropped.
	// The algorithm must rewrite every handle it has stored. The slices
	// are owned by the session and valid only during the call. Remap must
	// not call back into the platform's mutating surface (TryMatch,
	// Dispatch, Schedule); read-only accessors are safe and already speak
	// the new handle space.
	Remap(workers, tasks []int32)
}

// RetiredHandle marks a dropped object in a Remap table.
const RetiredHandle int32 = -1

// Retire ends the current arena epoch: every object that is provably dead
// at or before horizon (see the package comment above — matched, or past
// its deadline in Strict mode) is dropped, surviving handles are
// left-compacted preserving their relative order, and the old→new mapping
// is propagated to the algorithm (RetirableAlgorithm.Remap), the deadline
// queues, the undrained event tail and the committed matching. horizon is
// clamped to the session clock; passing Now() retires everything
// retirable, while an earlier horizon keeps a grace window of recently
// dead objects whose handles external views may still be resolving.
//
// Retire returns how many workers and tasks were dropped. It is a no-op
// (0, 0) when the bound algorithm does not implement RetirableAlgorithm.
//
// After a retirement that dropped anything: handles from before the call
// are invalid (Epoch increments); events not yet consumed by
// Drain/DrainEvents are rewritten in place — surviving handles are
// translated, dropped ones become -1 on their side — so drain before
// retiring to observe exact handles (the shard router does); Matching()
// views obtained earlier must not be retained, exactly as across Reset;
// and Matches() keeps counting commits across epochs.
//
// Retire never allocates at steady state: the remap tables and every
// compaction are in place, reusing arena capacity.
func (s *Session) Retire(horizon float64) (workers, tasks int) {
	ra, ok := s.alg.(RetirableAlgorithm)
	if !ok {
		return 0, 0
	}
	if horizon > s.now {
		horizon = s.now
	}

	wmap := growMap(&s.wRemap, len(s.workers))
	keep := 0
	for h := range s.workers {
		if s.workerDead(h, horizon) {
			wmap[h] = RetiredHandle
			continue
		}
		wmap[h] = int32(keep)
		if keep != h {
			s.workers[keep] = s.workers[h]
			s.wstate[keep] = s.wstate[h]
		}
		keep++
	}
	workers = len(s.workers) - keep
	s.workers = s.workers[:keep]
	s.wstate = s.wstate[:keep]

	tmap := growMap(&s.tRemap, len(s.tasks))
	keep = 0
	for h := range s.tasks {
		if s.taskDead(h, horizon) {
			tmap[h] = RetiredHandle
			continue
		}
		tmap[h] = int32(keep)
		if keep != h {
			s.tasks[keep] = s.tasks[h]
			s.tMatch[keep] = s.tMatch[h]
			s.tMatchAt[keep] = s.tMatchAt[h]
			s.tWithdrawn[keep] = s.tWithdrawn[h]
		}
		keep++
	}
	tasks = len(s.tasks) - keep
	s.tasks = s.tasks[:keep]
	s.tMatch = s.tMatch[:keep]
	s.tMatchAt = s.tMatchAt[:keep]
	s.tWithdrawn = s.tWithdrawn[:keep]

	if workers == 0 && tasks == 0 {
		return 0, 0
	}

	// Deadline queues: drop the entries of retired objects (their expiry
	// would have been suppressed — a retired object is matched or already
	// past its fired deadline) and rewrite the survivors' handles.
	s.wExpiry.remap(wmap)
	s.tExpiry.remap(tmap)

	// Matching: pairs commit with both sides stamped at the same instant,
	// so a pair's endpoints retire together; compact in place (the
	// Matching() contract already forbids retaining views across epoch
	// boundaries) and keep counting them in Matches().
	kept := s.matching.Pairs[:0]
	for _, p := range s.matching.Pairs {
		if nw := wmap[p.Worker]; nw >= 0 {
			kept = append(kept, model.Pair{Worker: int(nw), Task: int(tmap[p.Task])})
		}
	}
	s.matching.Pairs = kept

	// Event arena: reclaim the drained prefix, then rebase the undrained
	// tail into the new handle space (dropped objects become -1, the
	// "side not involved" sentinel events already use).
	s.CompactEvents()
	for i := range s.events {
		if h := s.events[i].Worker; h >= 0 {
			s.events[i].Worker = int(wmap[h])
		}
		if h := s.events[i].Task; h >= 0 {
			s.events[i].Task = int(tmap[h])
		}
	}

	s.retiredW += workers
	s.retiredT += tasks
	s.epoch++
	ra.Remap(wmap, tmap)
	if s.onRetire != nil {
		s.onRetire(wmap, tmap)
	}
	return workers, tasks
}

// workerDead reports whether worker h can never again affect the
// matching: matched (dead at commit), or — Strict mode only — past its
// availability deadline (now < deadline required to be assignable). Both
// death instants must fall at or before horizon.
func (s *Session) workerDead(h int, horizon float64) bool {
	ws := &s.wstate[h]
	if ws.withdrawn {
		// Withdrawn in either mode: TryMatch refuses it forever and its
		// expiry is suppressed, so no grace window is needed — the arbiter
		// that withdrew it has already dropped its own references.
		return true
	}
	if ws.matched {
		return ws.matchedAt <= horizon
	}
	return s.mode == Strict && s.workers[h].Deadline() <= horizon
}

// taskDead mirrors workerDead on the task side, with the task boundary:
// a task is assignable AT its deadline (now <= deadline), so an unmatched
// one is only dead once the horizon strictly passes it.
func (s *Session) taskDead(h int, horizon float64) bool {
	if s.tWithdrawn[h] {
		return true
	}
	if s.tMatch[h] {
		return s.tMatchAt[h] <= horizon
	}
	return s.mode == Strict && s.tasks[h].Deadline() < horizon
}

// growMap resizes a reusable remap table to n entries without clearing.
func growMap(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// Epoch returns how many retirements have compacted this session's
// arenas. Handles (and the NumWorkers/NumTasks handle spaces) are stable
// within an epoch and invalidated across one.
func (s *Session) Epoch() uint64 { return s.epoch }

// RetiredWorkers returns how many workers have been dropped by Retire
// over the session's lifetime.
func (s *Session) RetiredWorkers() int { return s.retiredW }

// RetiredTasks is RetiredWorkers for the task side.
func (s *Session) RetiredTasks() int { return s.retiredT }

// AdmittedWorkers returns how many workers have ever been admitted —
// the live arena plus everything retired. Equal to NumWorkers until the
// first retirement.
func (s *Session) AdmittedWorkers() int { return len(s.workers) + s.retiredW }

// AdmittedTasks is AdmittedWorkers for the task side.
func (s *Session) AdmittedTasks() int { return len(s.tasks) + s.retiredT }

// Matches returns the total number of committed pairs over the session's
// lifetime. Unlike Matching(), whose pairs are compacted away once both
// endpoints retire, the count survives epoch boundaries.
func (s *Session) Matches() int { return s.matchCount }
