package sim

import (
	"math"
	"testing"

	"ftoa/internal/geo"
	"ftoa/internal/model"
)

// retirableScript is scriptAlg plus a Remap hook, recording every remap
// table it receives so tests can assert on them.
type retirableScript struct {
	scriptAlg
	remaps  int
	onRemap func(w, t []int32)
}

func (r *retirableScript) Remap(w, t []int32) {
	r.remaps++
	if r.onRemap != nil {
		r.onRemap(w, t)
	}
}

// retireSession opens a Strict session over a 100x100 area driven by a
// retirable no-op script.
func retireSession(t *testing.T, mode Mode, alg Algorithm) *Session {
	t.Helper()
	m, err := NewMatcher(MatcherConfig{Mode: mode, Velocity: 1, Bounds: geo.NewRect(0, 0, 100, 100)})
	if err != nil {
		t.Fatal(err)
	}
	return m.NewSession(alg)
}

// TestRetireDropsDeadCompactsSurvivors is the basic contract: matched and
// (Strict) expired objects vanish, survivors keep their relative order
// under new dense handles, and the bookkeeping (epoch, retired counts,
// admitted totals, lifetime match count) adds up.
func TestRetireDropsDeadCompactsSurvivors(t *testing.T) {
	alg := &retirableScript{scriptAlg: scriptAlg{name: "noop"}}
	s := retireSession(t, Strict, alg)

	mustAddWorker(t, s, model.Worker{Loc: geo.Pt(1, 1), Arrive: 0, Patience: 5})         // will expire at 5
	w1 := mustAddWorker(t, s, model.Worker{Loc: geo.Pt(2, 2), Arrive: 0, Patience: 100}) // will be matched
	w2 := mustAddWorker(t, s, model.Worker{Loc: geo.Pt(3, 3), Arrive: 0, Patience: 100}) // survives
	t0 := mustAddTask(t, s, model.Task{Loc: geo.Pt(2, 2), Release: 1, Expiry: 100})      // matched with w1
	mustAddTask(t, s, model.Task{Loc: geo.Pt(9, 9), Release: 1, Expiry: 2})              // expires at 3
	mustAddTask(t, s, model.Task{Loc: geo.Pt(8, 8), Release: 1, Expiry: 100})            // survives
	if !s.TryMatch(w1, t0, 2) {
		t.Fatal("seed match refused")
	}
	s.Advance(10) // fires w0's and t1's expiries

	var gotW, gotT []int32
	alg.onRemap = func(wm, tm []int32) {
		gotW = append(gotW[:0], wm...)
		gotT = append(gotT[:0], tm...)
	}
	dw, dt := s.Retire(s.Now())
	if dw != 2 || dt != 2 {
		t.Fatalf("Retire dropped %d workers, %d tasks; want 2, 2", dw, dt)
	}
	if alg.remaps != 1 {
		t.Fatalf("Remap called %d times, want 1", alg.remaps)
	}
	wantW := []int32{-1, -1, 0}
	wantT := []int32{-1, -1, 0}
	for i := range wantW {
		if gotW[i] != wantW[i] {
			t.Fatalf("worker map = %v, want %v", gotW, wantW)
		}
	}
	for i := range wantT {
		if gotT[i] != wantT[i] {
			t.Fatalf("task map = %v, want %v", gotT, wantT)
		}
	}
	if s.NumWorkers() != 1 || s.NumTasks() != 1 {
		t.Fatalf("live arenas %d/%d, want 1/1", s.NumWorkers(), s.NumTasks())
	}
	if s.Worker(0).Loc != geo.Pt(3, 3) {
		t.Fatalf("surviving worker = %+v, want the one admitted at (3,3) (old handle %d)", s.Worker(0), w2)
	}
	if s.Task(0).Loc != geo.Pt(8, 8) {
		t.Fatalf("surviving task = %+v, want the one at (8,8)", s.Task(0))
	}
	if s.Epoch() != 1 {
		t.Fatalf("Epoch = %d, want 1", s.Epoch())
	}
	if s.RetiredWorkers() != 2 || s.RetiredTasks() != 2 {
		t.Fatalf("retired counters %d/%d, want 2/2", s.RetiredWorkers(), s.RetiredTasks())
	}
	if s.AdmittedWorkers() != 3 || s.AdmittedTasks() != 3 {
		t.Fatalf("admitted %d/%d, want 3/3", s.AdmittedWorkers(), s.AdmittedTasks())
	}
	if s.Matches() != 1 {
		t.Fatalf("Matches = %d, want 1 across the epoch boundary", s.Matches())
	}
	if s.Matching().Size() != 0 {
		t.Fatalf("Matching has %d pairs after both endpoints retired, want 0", s.Matching().Size())
	}
	// The survivors are still matchable with each other under new handles.
	if !s.TryMatch(0, 0, s.Now()) {
		t.Fatal("surviving pair refused after retirement")
	}
}

// TestRetireAssumeGuideKeepsUnmatched: in AssumeGuide mode deadlines are
// not enforced, so only matched objects may retire — an expired-unmatched
// object can still be matched later and must survive.
func TestRetireAssumeGuideKeepsUnmatched(t *testing.T) {
	alg := &retirableScript{scriptAlg: scriptAlg{name: "noop"}}
	s := retireSession(t, AssumeGuide, alg)
	w0 := mustAddWorker(t, s, model.Worker{Loc: geo.Pt(1, 1), Arrive: 0, Patience: 1}) // expires at 1, stays
	w1 := mustAddWorker(t, s, model.Worker{Loc: geo.Pt(2, 2), Arrive: 0, Patience: 1})
	t0 := mustAddTask(t, s, model.Task{Loc: geo.Pt(2, 2), Release: 0, Expiry: 1})
	if !s.TryMatch(w1, t0, 0) {
		t.Fatal("match refused")
	}
	s.Advance(50)
	dw, dt := s.Retire(s.Now())
	if dw != 1 || dt != 1 {
		t.Fatalf("Retire dropped %d/%d, want the matched pair only (1/1)", dw, dt)
	}
	if s.NumWorkers() != 1 {
		t.Fatalf("live workers %d, want 1 (expired-unmatched stays matchable)", s.NumWorkers())
	}
	// The survivor (old w0, now handle 0) is still assignable, per the
	// paper's counting assumption.
	t1 := mustAddTask(t, s, model.Task{Loc: geo.Pt(1, 1), Release: 50, Expiry: 1})
	if !s.TryMatch(0, t1, s.Now()) {
		t.Fatal("expired-but-unmatched worker should still match in AssumeGuide mode")
	}
	_ = w0
}

// TestRetireNonRetirableAlgorithmIsNoop: without a Remap hook the session
// must refuse to invalidate the algorithm's handles.
func TestRetireNonRetirableAlgorithmIsNoop(t *testing.T) {
	s := retireSession(t, Strict, &scriptAlg{name: "plain"})
	mustAddWorker(t, s, model.Worker{Loc: geo.Pt(1, 1), Arrive: 0, Patience: 1})
	s.Advance(10)
	if dw, dt := s.Retire(s.Now()); dw != 0 || dt != 0 {
		t.Fatalf("Retire on a non-retirable algorithm dropped %d/%d, want 0/0", dw, dt)
	}
	if s.NumWorkers() != 1 || s.Epoch() != 0 {
		t.Fatalf("arena %d / epoch %d changed under a non-retirable algorithm", s.NumWorkers(), s.Epoch())
	}
}

// TestRetireGraceHorizon: objects dead after the horizon survive the
// compaction — the grace window external views rely on.
func TestRetireGraceHorizon(t *testing.T) {
	alg := &retirableScript{scriptAlg: scriptAlg{name: "noop"}}
	s := retireSession(t, Strict, alg)
	w0 := mustAddWorker(t, s, model.Worker{Loc: geo.Pt(1, 1), Arrive: 0, Patience: 100})
	w1 := mustAddWorker(t, s, model.Worker{Loc: geo.Pt(2, 2), Arrive: 0, Patience: 100})
	t0 := mustAddTask(t, s, model.Task{Loc: geo.Pt(1, 1), Release: 0, Expiry: 100})
	t1 := mustAddTask(t, s, model.Task{Loc: geo.Pt(2, 2), Release: 0, Expiry: 100})
	if !s.TryMatch(w0, t0, 1) || !s.TryMatch(w1, t1, 5) {
		t.Fatal("seed matches refused")
	}
	s.Advance(10)
	if dw, dt := s.Retire(3); dw != 1 || dt != 1 {
		t.Fatalf("Retire(3) dropped %d/%d, want only the pair matched at 1", dw, dt)
	}
	// The pair matched at 5 survived and Matching still reports it, under
	// its new handles.
	if got := s.Matching().Size(); got != 1 {
		t.Fatalf("Matching size %d, want 1", got)
	}
	p := s.Matching().Pairs[0]
	if p.Worker != 0 || p.Task != 0 {
		t.Fatalf("surviving pair %+v, want remapped (0,0)", p)
	}
	if s.Matches() != 2 {
		t.Fatalf("Matches = %d, want 2", s.Matches())
	}
}

// TestRetireRebasesPendingExpiries: a surviving object's queued deadline
// must still fire, under its new handle; a retired matched object's
// pending deadline must not fire at all.
func TestRetireRebasesPendingExpiries(t *testing.T) {
	alg := &retirableScript{scriptAlg: scriptAlg{name: "noop"}}
	s := retireSession(t, Strict, alg)
	w0 := mustAddWorker(t, s, model.Worker{Loc: geo.Pt(1, 1), Arrive: 0, Patience: 50}) // matched below; deadline 50 pending
	w1 := mustAddWorker(t, s, model.Worker{Loc: geo.Pt(2, 2), Arrive: 0, Patience: 60}) // survives; expires at 60
	t0 := mustAddTask(t, s, model.Task{Loc: geo.Pt(1, 1), Release: 0, Expiry: 100})
	if !s.TryMatch(w0, t0, 1) {
		t.Fatal("match refused")
	}
	s.Advance(2)
	if dw, _ := s.Retire(s.Now()); dw != 1 {
		t.Fatalf("retired %d workers, want 1", dw)
	}
	s.DrainEvents(nil) // discard the match event
	s.Advance(100)     // past both original deadlines
	evs := s.DrainEvents(nil)
	if len(evs) != 1 {
		t.Fatalf("events after retirement = %+v, want exactly w1's expiry", evs)
	}
	if evs[0].Kind != EventWorkerExpired || evs[0].Worker != 0 || evs[0].Time != 60 {
		t.Fatalf("expiry = %+v, want worker-expired handle 0 (old %d) at 60", evs[0], w1)
	}
	if s.ExpiredWorkers() != 1 {
		t.Fatalf("ExpiredWorkers = %d, want 1", s.ExpiredWorkers())
	}
}

// TestRetireRebasesUndrainedEvents: events not yet drained when a
// retirement lands are rewritten into the new handle space, retired
// sides becoming -1; the drain cursor and CompactEvents interplay stays
// coherent.
func TestRetireRebasesUndrainedEvents(t *testing.T) {
	alg := &retirableScript{scriptAlg: scriptAlg{name: "noop"}}
	s := retireSession(t, Strict, alg)
	w0 := mustAddWorker(t, s, model.Worker{Loc: geo.Pt(1, 1), Arrive: 0, Patience: 100})
	w1 := mustAddWorker(t, s, model.Worker{Loc: geo.Pt(2, 2), Arrive: 0, Patience: 100})
	t0 := mustAddTask(t, s, model.Task{Loc: geo.Pt(1, 1), Release: 0, Expiry: 100})
	t1 := mustAddTask(t, s, model.Task{Loc: geo.Pt(2, 2), Release: 0, Expiry: 100})
	if !s.TryMatch(w0, t0, 1) {
		t.Fatal("first match refused")
	}
	got := s.Drain(nil) // consume the first match
	if len(got) != 1 {
		t.Fatalf("drained %d, want 1", len(got))
	}
	if !s.TryMatch(w1, t1, 4) { // undrained when Retire(2) lands
		t.Fatal("second match refused")
	}
	s.Advance(5)
	if dw, dt := s.Retire(2); dw != 1 || dt != 1 {
		t.Fatalf("Retire(2) dropped %d/%d, want 1/1", dw, dt)
	}
	evs := s.DrainEvents(nil)
	if len(evs) != 1 || evs[0].Kind != EventMatch {
		t.Fatalf("undrained tail = %+v, want the second match only", evs)
	}
	// w1/t1 survived (matched at 4 > horizon 2) and compacted to 0/0.
	if evs[0].Worker != 0 || evs[0].Task != 0 {
		t.Fatalf("undrained match = %+v, want remapped handles (0,0)", evs[0])
	}
}

// TestRetireRacingScheduledTimer: a retirement between Schedule and the
// timer's firing must not lose the timer, and the callback observes the
// post-retirement handle space.
func TestRetireRacingScheduledTimer(t *testing.T) {
	var fired []float64
	var liveAtFire int
	alg := &retirableScript{}
	alg.scriptAlg = scriptAlg{
		name: "timer",
		onTimer: func(p Platform, now float64) {
			fired = append(fired, now)
			liveAtFire = p.NumWorkers()
		},
	}
	s := retireSession(t, Strict, alg)
	mustAddWorker(t, s, model.Worker{Loc: geo.Pt(1, 1), Arrive: 0, Patience: 2}) // dead at 2
	mustAddWorker(t, s, model.Worker{Loc: geo.Pt(2, 2), Arrive: 0, Patience: 50})
	s.Schedule(10)
	s.Advance(5)
	if dw, _ := s.Retire(s.Now()); dw != 1 {
		t.Fatalf("retired %d workers, want 1", dw)
	}
	s.Advance(20)
	if len(fired) != 1 || fired[0] != 10 {
		t.Fatalf("timer fired %v, want exactly once at 10 across the retirement", fired)
	}
	if liveAtFire != 1 {
		t.Fatalf("timer observed %d workers, want the compacted arena (1)", liveAtFire)
	}
}

// TestResetAfterRetire: a session that has been through epochs rewinds
// cleanly — a fresh identical run on the same session behaves as if the
// session were new.
func TestResetAfterRetire(t *testing.T) {
	alg := &retirableScript{scriptAlg: scriptAlg{name: "noop"}}
	s := retireSession(t, Strict, alg)
	run := func() (matches int, live int) {
		w := mustAddWorker(t, s, model.Worker{Loc: geo.Pt(1, 1), Arrive: 0, Patience: 10})
		r := mustAddTask(t, s, model.Task{Loc: geo.Pt(1, 1), Release: 0, Expiry: 10})
		s.TryMatch(w, r, 1)
		s.Advance(5)
		s.Retire(s.Now())
		mustAddWorker(t, s, model.Worker{Loc: geo.Pt(3, 3), Arrive: 5, Patience: 100})
		return s.Matches(), s.NumWorkers()
	}
	m1, l1 := run()
	s.Reset(&retirableScript{scriptAlg: scriptAlg{name: "noop"}})
	if s.Epoch() != 0 || s.Matches() != 0 || s.AdmittedWorkers() != 0 {
		t.Fatalf("Reset left epoch=%d matches=%d admitted=%d", s.Epoch(), s.Matches(), s.AdmittedWorkers())
	}
	m2, l2 := run()
	if m1 != m2 || l1 != l2 {
		t.Fatalf("post-Reset run (%d, %d) differs from first (%d, %d)", m2, l2, m1, l1)
	}
}

// TestRetireSteadyStateDoesNotAllocate: a soak loop of admit → expire →
// retire must settle to zero allocations per round, the property that
// makes scheduled retirement safe on the serving hot path.
func TestRetireSteadyStateDoesNotAllocate(t *testing.T) {
	alg := &retirableScript{scriptAlg: scriptAlg{name: "noop"}}
	s := retireSession(t, Strict, alg)
	clock := 0.0
	var evbuf []SessionEvent
	round := func() {
		for i := 0; i < 32; i++ {
			mustAddWorker(t, s, model.Worker{Loc: geo.Pt(float64(i%10)*10, 5), Arrive: clock, Patience: 1})
			mustAddTask(t, s, model.Task{Loc: geo.Pt(5, float64(i%10)*10), Release: clock, Expiry: 1})
			clock += 0.1
		}
		clock += 2 // everything above expires
		s.Advance(clock)
		evbuf = s.DrainEvents(evbuf[:0])
		s.CompactEvents()
		s.Retire(clock)
	}
	for i := 0; i < 8; i++ {
		round() // warm all capacities
	}
	if avg := testing.AllocsPerRun(16, round); avg > 0 {
		t.Fatalf("soak round allocates %.1f times at steady state, want 0", avg)
	}
	if s.NumWorkers() != 0 || s.NumTasks() != 0 {
		t.Fatalf("arenas %d/%d after full-expiry soak, want 0/0", s.NumWorkers(), s.NumTasks())
	}
	if math.IsInf(s.Now(), -1) {
		t.Fatal("clock never advanced")
	}
}
