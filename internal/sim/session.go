package sim

import (
	"errors"
	"fmt"
	"math"

	"ftoa/internal/geo"
	"ftoa/internal/model"
)

// Match is one committed worker-task pair, reported in commit order.
// Worker and Task are the session handles returned by AddWorker/AddTask.
type Match struct {
	Worker int
	Task   int
	// Time is the session time at which the pair was committed.
	Time float64
}

// Hints carries closed-world sizing information when the caller happens to
// have it — a replay driver knows the full population in advance, a live
// deployment at best estimates it. All fields are optional; zero means
// unknown. Hints never change what an algorithm matches, only how it sizes
// internal state, with one documented exception: TGOA's greedy/optimal
// phase split needs the total arrival count, so with zero hints it stays
// in its greedy phase forever.
type Hints struct {
	// ExpectedWorkers and ExpectedTasks estimate how many objects the
	// session will admit.
	ExpectedWorkers int
	ExpectedTasks   int
	// Horizon estimates the session end time (same clock as arrivals).
	Horizon float64
}

// MatcherConfig parameterises a Matcher. Velocity must be positive; Bounds
// must be a non-empty rectangle covering the locations that will arrive.
type MatcherConfig struct {
	// Mode selects the match-validation semantics (Strict or AssumeGuide).
	Mode Mode
	// Velocity is the shared worker speed (distance per time unit).
	Velocity float64
	// Bounds is the service area. Spatial algorithms size their indexes
	// from it; locations outside are clamped by grid lookups, not rejected.
	Bounds geo.Rect
	// Hints optionally sizes algorithm state; see Hints.
	Hints Hints
	// OnEvent, when non-nil, is invoked synchronously for every lifecycle
	// event — commits and expiries — from within the
	// AddWorker/AddTask/Advance/Finish call that produced it, possibly
	// mid-algorithm-callback. The handler must not call back into the
	// Session (no admissions, Advance, Finish or Reset): the algorithm's
	// state may be mid-update when it fires. Record the event and return;
	// events also remain available via Session.DrainEvents regardless.
	OnEvent func(SessionEvent)
	// OnMatch is the match-only compatibility hook: invoked for every
	// EventMatch, under the same restrictions as OnEvent. Both hooks may
	// be set; OnEvent fires first.
	OnMatch func(Match)
	// OnRetire, when non-nil, is invoked synchronously from within
	// Session.Retire after a compaction that dropped at least one object,
	// with the same old→new handle tables the algorithm's Remap hook
	// received (RetiredHandle marks dropped objects). External views that
	// track session handles across epochs rebase themselves here. The
	// slices are owned by the session and valid only during the call, and
	// the handler must not call back into the Session.
	OnRetire func(workers, tasks []int32)
	// CommitGate, when non-nil, is consulted by TryMatch after every
	// platform validity check has passed, immediately before the pair
	// commits; returning false vetoes the commit (TryMatch reports false
	// and the attempt counts as rejected). The shard router uses it to
	// arbitrate cross-shard claims on halo-mirrored objects — a vetoed
	// commit means another session's copy already matched or expired. The
	// gate runs mid-algorithm-callback and must not call back into the
	// Session.
	CommitGate func(w, t int, now float64) bool
}

// Matcher is a configured factory for open-world matching sessions. One
// Matcher can mint any number of independent sessions (e.g. one per tenant
// or per shard); the Matcher itself is immutable and safe for concurrent
// use. An individual Session is single-goroutine: callers serialising live
// traffic onto it must provide their own locking.
type Matcher struct {
	cfg MatcherConfig
}

// NewMatcher validates cfg and returns a session factory.
func NewMatcher(cfg MatcherConfig) (*Matcher, error) {
	if !(cfg.Velocity > 0) {
		return nil, fmt.Errorf("sim: non-positive velocity %v", cfg.Velocity)
	}
	if !(cfg.Bounds.Width() > 0) || !(cfg.Bounds.Height() > 0) {
		return nil, fmt.Errorf("sim: empty bounds %+v", cfg.Bounds)
	}
	if cfg.Mode != Strict && cfg.Mode != AssumeGuide {
		return nil, fmt.Errorf("sim: unknown mode %d", cfg.Mode)
	}
	return &Matcher{cfg: cfg}, nil
}

// Config returns the matcher's configuration.
func (m *Matcher) Config() MatcherConfig { return m.cfg }

// NewSession starts an open-world session driven by alg. The algorithm's
// Init hook runs before NewSession returns.
func (m *Matcher) NewSession(alg Algorithm) *Session {
	return newSession(m.cfg, alg)
}

// newSession builds a session without re-validating cfg. The replay Engine
// uses it directly so that degenerate recorded instances (zero velocity,
// empty bounds) replay exactly as they always did instead of failing
// Matcher validation.
func newSession(cfg MatcherConfig, alg Algorithm) *Session {
	s := &Session{
		mode:     cfg.Mode,
		velocity: cfg.Velocity,
		bounds:   cfg.Bounds,
		hints:    cfg.Hints,
		onEvent:  cfg.OnEvent,
		onMatch:  cfg.OnMatch,
		onRetire: cfg.OnRetire,
		gate:     cfg.CommitGate,
	}
	s.Reset(alg)
	return s
}

// workerState is the platform-owned ground truth for one admitted worker.
type workerState struct {
	anchor     geo.Point // position at anchorTime
	target     geo.Point // dispatch target, valid while moving
	origin     geo.Point // admission location, for guided-distance stats
	anchorTime float64
	matchedAt  float64 // commit time, valid when matched
	moving     bool
	matched    bool
	withdrawn  bool // retracted via WithdrawWorker; see withdraw.go
}

// ErrFinished is returned by AddWorker/AddTask after Finish.
var ErrFinished = errors.New("sim: session finished")

// Session is one live open-world matching session: workers and tasks are
// admitted at arrival time and handed to the algorithm immediately, with no
// pre-materialised instance. Handles returned by AddWorker/AddTask are
// stable dense indexes into growable arenas (0, 1, 2, …, in admission
// order per side), so algorithm state and the platform's ground truth stay
// flat slices with zero steady-state allocations on the hot path. The
// arenas are append-only within an epoch; long-lived sessions bound their
// memory by calling Retire (see retire.go), which compacts away provably
// dead objects and remaps the surviving handles.
//
// Session time is driven by the caller: each admission carries its arrival
// time (clamped to be non-decreasing), and Advance moves the clock without
// admitting anything, firing due timers and platform expiries. A Session
// is not safe for concurrent use.
//
// The session's output surface is a typed lifecycle event stream (see
// SessionEvent): every committed pair and every deadline expiry of an
// unmatched object is appended to an internal event arena, observable
// incrementally via DrainEvents (or synchronously via the OnEvent hook).
// Expiries are detected by a platform-side deadline min-heap driven from
// the same clock as the algorithm's single Schedule timer, so "object
// left unserved" is observable without any algorithm cooperation — and
// without perturbing what the algorithm matches.
type Session struct {
	mode     Mode
	velocity float64
	bounds   geo.Rect
	hints    Hints
	onEvent  func(SessionEvent)
	onMatch  func(Match)
	onRetire func(workers, tasks []int32)
	gate     func(w, t int, now float64) bool

	alg         Algorithm
	timerAlg    TimerAlgorithm         // nil when alg has no OnTimer
	withdrawAlg WithdrawAwareAlgorithm // nil when alg has no OnWithdraw hooks

	// Arenas; handles index into them. Append-only within an epoch;
	// Retire compacts them across epoch boundaries (see retire.go).
	workers    []model.Worker
	tasks      []model.Task
	wstate     []workerState
	tMatch     []bool
	tMatchAt   []float64 // commit time per task, valid when tMatch
	tWithdrawn []bool    // retracted via WithdrawTask; see withdraw.go

	// Epoch bookkeeping (retire.go): wRemap/tRemap are the reusable
	// old→new handle tables, retired* the cumulative drop counts.
	wRemap   []int32
	tRemap   []int32
	retiredW int
	retiredT int
	epoch    uint64

	matching model.Matching
	// events is the lifecycle arena: commits and expiries in fire order.
	// drained is the shared consumption cursor of Drain/DrainEvents;
	// CompactEvents reclaims the consumed prefix.
	events  []SessionEvent
	drained int

	// wExpiry/tExpiry are the platform-side deadline queues (see
	// event.go): one entry per admitted object, popped lazily as the
	// clock passes it.
	wExpiry  expiryQueue
	tExpiry  expiryQueue
	expiredW int
	expiredT int

	// Lifetime withdrawal counts (withdraw.go); survive Retire.
	withdrawnW int
	withdrawnT int

	now      float64
	timer    float64 // pending timer or +Inf
	finished bool

	attempted  int
	rejected   int
	matchCount int // lifetime commits; survives Retire's matching compaction
	stats      MatchStats
}

var _ Platform = (*Session)(nil)

// Reset rewinds the session to empty and rebinds it to alg (which may be
// the same algorithm), reusing all arena capacity. It exists so replay
// drivers and benchmarks can run many sessions with zero steady-state
// allocations; live deployments normally create a session once and never
// reset it.
func (s *Session) Reset(alg Algorithm) {
	s.workers = s.workers[:0]
	s.tasks = s.tasks[:0]
	s.wstate = s.wstate[:0]
	s.tMatch = s.tMatch[:0]
	s.tMatchAt = s.tMatchAt[:0]
	s.tWithdrawn = s.tWithdrawn[:0]
	// The matching escapes to callers via Matching, so it is the one piece
	// of per-session state that cannot be reused.
	s.matching = model.Matching{}
	s.events = s.events[:0]
	s.drained = 0
	s.wExpiry.reset()
	s.tExpiry.reset()
	s.expiredW = 0
	s.expiredT = 0
	s.withdrawnW = 0
	s.withdrawnT = 0
	s.retiredW = 0
	s.retiredT = 0
	s.epoch = 0
	s.matchCount = 0
	// The clock starts unset (-Inf) so the first admission defines session
	// time — recorded streams replay with their timestamps intact, even
	// negative ones; clamping only ever applies to genuinely out-of-order
	// arrivals.
	s.now = math.Inf(-1)
	s.timer = math.Inf(1)
	s.finished = false
	s.attempted = 0
	s.rejected = 0
	s.stats = MatchStats{}
	s.alg = alg
	s.timerAlg, _ = alg.(TimerAlgorithm)
	s.withdrawAlg, _ = alg.(WithdrawAwareAlgorithm)
	alg.Init(s)
}

// AddWorker admits a worker and returns its handle. The worker's Arrive
// time is clamped up to the session clock (an object cannot arrive in the
// past), due timers fire first, and the algorithm's OnWorkerArrival hook
// runs before AddWorker returns. Only ErrFinished is possible after a
// successful NewSession.
func (s *Session) AddWorker(w model.Worker) (int, error) {
	return s.addWorker(w, true)
}

func (s *Session) addWorker(w model.Worker, pushExpiry bool) (int, error) {
	if s.finished {
		return -1, ErrFinished
	}
	if w.Arrive < s.now {
		w.Arrive = s.now
	}
	s.advanceTo(w.Arrive)
	h := len(s.workers)
	s.workers = append(s.workers, w)
	s.wstate = append(s.wstate, workerState{
		anchor:     w.Loc,
		origin:     w.Loc,
		anchorTime: w.Arrive,
	})
	if pushExpiry {
		s.wExpiry.push(expiryEntry{at: w.Deadline(), handle: int32(h)})
	}
	s.alg.OnWorkerArrival(h, w.Arrive)
	return h, nil
}

// AddTask admits a task and returns its handle; see AddWorker for the
// clock and timer semantics (Release plays the role of Arrive).
func (s *Session) AddTask(t model.Task) (int, error) {
	return s.addTask(t, true)
}

func (s *Session) addTask(t model.Task, pushExpiry bool) (int, error) {
	if s.finished {
		return -1, ErrFinished
	}
	if t.Release < s.now {
		t.Release = s.now
	}
	s.advanceTo(t.Release)
	h := len(s.tasks)
	s.tasks = append(s.tasks, t)
	s.tMatch = append(s.tMatch, false)
	s.tMatchAt = append(s.tMatchAt, 0)
	s.tWithdrawn = append(s.tWithdrawn, false)
	if pushExpiry {
		s.tExpiry.push(expiryEntry{at: t.Deadline(), handle: int32(h)})
	}
	s.alg.OnTaskArrival(h, t.Release)
	return h, nil
}

// Advance moves the session clock to now (ignored if in the past), firing
// any due timer, and returns the resulting clock. Live drivers call it
// periodically so batch algorithms flush even when no arrivals come in.
func (s *Session) Advance(now float64) float64 {
	if !s.finished {
		s.advanceTo(now)
	}
	return s.now
}

// advanceTo fires, in chronological order, the pending algorithm timer
// and the platform-side deadline expiries that become due at or before t,
// then moves the clock to t. Timer callbacks observe a monotonic clock: a
// timer that was scheduled in the past (see Schedule) fires at the
// current session time. The two timer sources are independent — expiries
// never consume the algorithm's single Schedule slot and never call into
// the algorithm.
//
// Dueness is one-sided per side: a worker is unavailable AT its deadline
// (WorkerAvailable requires now < deadline), so its expiry is due once
// t >= deadline; a task is still matchable AT its deadline (TaskAvailable
// allows now <= deadline), so its expiry only becomes due once the clock
// strictly passes it — which also means every commit that could suppress
// the expiry has already been observed when it fires. On a tie between a
// task expiry and the algorithm timer the timer fires first for the same
// reason; match-time-aware suppression in fireExpiry keeps the emitted
// events exactly the brute-force-oracle set either way.
func (s *Session) advanceTo(t float64) {
	for {
		we, wok := s.wExpiry.peek()
		te, tok := s.tExpiry.peek()
		wDue := wok && we.at <= t
		tDue := tok && te.at < t
		timerDue := s.timerAlg != nil && s.timer <= t
		switch {
		case wDue && (!tDue || we.at <= te.at) && (!timerDue || we.at <= s.timer):
			s.wExpiry.pop()
			s.fireWorkerExpiry(we)
		case tDue && (!timerDue || te.at < s.timer):
			s.tExpiry.pop()
			s.fireTaskExpiry(te)
		case timerDue:
			at := s.timer
			s.timer = math.Inf(1)
			if at < s.now {
				at = s.now
			}
			s.now = at
			s.timerAlg.OnTimer(at)
		default:
			if t > s.now {
				s.now = t
			}
			return
		}
	}
}

// fireWorkerExpiry decides whether a popped worker deadline is a real
// expiry and emits the event. Suppression is match-time-aware, so the
// emitted set is independent of when the queue happened to pop the entry:
// a worker expires unless it was matched strictly before its deadline
// (mirroring WorkerAvailable's now < deadline boundary). Emission never
// touches algorithm state.
func (s *Session) fireWorkerExpiry(e expiryEntry) {
	if e.at > s.now {
		s.now = e.at
	}
	w := int(e.handle)
	ws := &s.wstate[w]
	if ws.withdrawn {
		// Retracted copies have no lifecycle here: whichever session
		// committed or expired the original reports it.
		return
	}
	if ws.matched && ws.matchedAt < e.at {
		return
	}
	s.expiredW++
	s.emit(SessionEvent{Kind: EventWorkerExpired, Worker: w, Task: -1, Time: e.at})
}

// fireTaskExpiry is fireWorkerExpiry for the task side: a task expires
// unless it was matched at or before its deadline (TaskAvailable allows
// now <= deadline).
func (s *Session) fireTaskExpiry(e expiryEntry) {
	if e.at > s.now {
		s.now = e.at
	}
	t := int(e.handle)
	if s.tWithdrawn[t] {
		return
	}
	if s.tMatch[t] && s.tMatchAt[t] <= e.at {
		return
	}
	s.expiredT++
	s.emit(SessionEvent{Kind: EventTaskExpired, Worker: -1, Task: t, Time: e.at})
}

// emit appends one lifecycle event to the arena and fires the synchronous
// hooks (OnEvent first, then the OnMatch compatibility hook for matches).
func (s *Session) emit(ev SessionEvent) {
	s.events = append(s.events, ev)
	if s.onEvent != nil {
		s.onEvent(ev)
	}
	if ev.Kind == EventMatch && s.onMatch != nil {
		s.onMatch(Match{Worker: ev.Worker, Task: ev.Task, Time: ev.Time})
	}
}

// Finish ends the session: the clock advances to the hinted horizon (if
// later than the last arrival), remaining timers fire, and the algorithm's
// OnFinish hook flushes pending work. Further admissions return
// ErrFinished; Drain, Matching and the other accessors remain usable.
func (s *Session) Finish() {
	if s.finished {
		return
	}
	// An idle session (no arrivals, no horizon) finishes at time 0, the
	// clock origin a replay of an empty instance would use.
	end := 0.0
	if s.now > end {
		end = s.now
	}
	if s.hints.Horizon > end {
		end = s.hints.Horizon
	}
	s.advanceTo(end)
	s.finished = true
	s.alg.OnFinish(end)
	// The session is over: flush the task deadlines sitting exactly at
	// the end time — a task whose deadline IS the end had its last
	// chance in OnFinish just now, and advanceTo(end) above already
	// fired every worker deadline <= end and every task deadline < end.
	// Deadlines beyond the end are not expiries: those objects outlive
	// the session unserved-but-alive.
	for {
		te, tok := s.tExpiry.peek()
		if !tok || te.at > end {
			return
		}
		s.tExpiry.pop()
		s.fireTaskExpiry(te)
	}
}

// DrainEvents appends to dst every lifecycle event emitted since the
// previous DrainEvents (or Drain — the two share one consumption cursor;
// Drain is DrainEvents filtered to matches) and returns the extended
// slice. Event order is fire order, with non-decreasing times.
func (s *Session) DrainEvents(dst []SessionEvent) []SessionEvent {
	dst = append(dst, s.events[s.drained:]...)
	s.drained = len(s.events)
	return dst
}

// Drain appends to dst every match committed since the previous Drain
// (or DrainEvents — see DrainEvents for the shared-cursor semantics) and
// returns the extended slice. Pair order is commit order.
func (s *Session) Drain(dst []Match) []Match {
	for _, ev := range s.events[s.drained:] {
		if ev.Kind == EventMatch {
			dst = append(dst, Match{Worker: ev.Worker, Task: ev.Task, Time: ev.Time})
		}
	}
	s.drained = len(s.events)
	return dst
}

// CompactEvents reclaims the arena prefix already consumed by
// Drain/DrainEvents, keeping the backing capacity. Long-lived sessions
// that drain incrementally call it periodically so the event arena stays
// proportional to the undrained tail instead of the session's lifetime.
func (s *Session) CompactEvents() {
	if s.drained == 0 {
		return
	}
	n := copy(s.events, s.events[s.drained:])
	s.events = s.events[:n]
	s.drained = 0
}

// ExpiredWorkers returns how many workers left the platform unserved
// (their deadline passed while unmatched).
func (s *Session) ExpiredWorkers() int { return s.expiredW }

// ExpiredTasks returns how many tasks expired unserved.
func (s *Session) ExpiredTasks() int { return s.expiredT }

// Now returns the session clock.
func (s *Session) Now() float64 { return s.now }

// Matching returns the committed matching so far, in the current epoch's
// handle space (pairs whose endpoints retired are compacted away; Matches
// keeps the lifetime count). The caller must not retain it across Reset
// or Retire.
func (s *Session) Matching() model.Matching { return s.matching }

// Stats returns the service-quality aggregates over committed matches.
func (s *Session) Stats() MatchStats { return s.stats }

// Attempted returns the number of TryMatch calls so far.
func (s *Session) Attempted() int { return s.attempted }

// Rejected returns how many TryMatch calls the platform refused.
func (s *Session) Rejected() int { return s.rejected }

// Mode returns the session's validation mode.
func (s *Session) Mode() Mode { return s.mode }

// Worker implements Platform. The returned pointer stays valid and
// immutable for the current arena epoch (for the whole session if Retire
// is never called).
func (s *Session) Worker(w int) *model.Worker { return &s.workers[w] }

// Task implements Platform.
func (s *Session) Task(t int) *model.Task { return &s.tasks[t] }

// NumWorkers implements Platform.
func (s *Session) NumWorkers() int { return len(s.workers) }

// NumTasks implements Platform.
func (s *Session) NumTasks() int { return len(s.tasks) }

// Velocity implements Platform.
func (s *Session) Velocity() float64 { return s.velocity }

// Bounds implements Platform.
func (s *Session) Bounds() geo.Rect { return s.bounds }

// Hints implements Platform.
func (s *Session) Hints() Hints { return s.hints }

// WorkerPos implements Platform.
func (s *Session) WorkerPos(w int, now float64) geo.Point {
	ws := &s.wstate[w]
	if !ws.moving {
		return ws.anchor
	}
	elapsed := now - ws.anchorTime
	if elapsed <= 0 {
		return ws.anchor
	}
	total := ws.anchor.Dist(ws.target)
	traveled := elapsed * s.velocity
	if traveled >= total {
		// Arrived: collapse the segment so future queries are O(1).
		ws.anchor = ws.target
		ws.anchorTime = now
		ws.moving = false
		return ws.anchor
	}
	return ws.anchor.Lerp(ws.target, traveled/total)
}

// WorkerAvailable implements Platform. In AssumeGuide mode deadlines are
// not enforced — the paper's counting assumes guide pairs are feasible, so
// an unmatched worker stays assignable; in Strict mode a task released at
// `now` must satisfy Sr < Sw + Dw.
func (s *Session) WorkerAvailable(w int, now float64) bool {
	ws := &s.wstate[w]
	if ws.matched || ws.withdrawn {
		return false
	}
	if s.mode == AssumeGuide {
		return true
	}
	return now < s.workers[w].Deadline()
}

// TaskAvailable implements Platform. See WorkerAvailable for the mode
// semantics; in Strict mode a worker departing at `now` needs non-negative
// travel budget.
func (s *Session) TaskAvailable(t int, now float64) bool {
	if s.tMatch[t] || s.tWithdrawn[t] {
		return false
	}
	if s.mode == AssumeGuide {
		return true
	}
	return now <= s.tasks[t].Deadline()
}

// TryMatch implements Platform.
func (s *Session) TryMatch(w, t int, now float64) bool {
	s.attempted++
	ws := &s.wstate[w]
	if ws.matched || ws.withdrawn || s.tMatch[t] || s.tWithdrawn[t] {
		s.rejected++
		return false
	}
	if s.mode == Strict {
		if !model.FeasibleAt(&s.workers[w], &s.tasks[t], s.WorkerPos(w, now), now, s.velocity) {
			s.rejected++
			return false
		}
	}
	// The commit gate runs last, once the pair is otherwise committable:
	// a veto means an external arbiter (the shard router's cross-shard
	// claim protocol) knows one endpoint is spoken for elsewhere.
	if s.gate != nil && !s.gate(w, t, now) {
		s.rejected++
		return false
	}
	pos := s.WorkerPos(w, now)
	ws.matched = true
	ws.matchedAt = now
	s.tMatch[t] = true
	s.tMatchAt[t] = now
	s.matching.Add(w, t)
	s.matchCount++
	s.stats.TotalPickupDistance += pos.Dist(s.tasks[t].Loc)
	s.stats.TotalGuidedDistance += ws.origin.Dist(pos)
	if wait := now - s.tasks[t].Release; wait > 0 {
		s.stats.TotalTaskWait += wait
	}
	if idle := now - s.workers[w].Arrive; idle > 0 {
		s.stats.TotalWorkerIdle += idle
	}
	s.emit(SessionEvent{Kind: EventMatch, Worker: w, Task: t, Time: now})
	return true
}

// Dispatch implements Platform.
func (s *Session) Dispatch(w int, target geo.Point, now float64) {
	ws := &s.wstate[w]
	if ws.matched {
		return
	}
	pos := s.WorkerPos(w, now)
	ws.anchor = pos
	ws.anchorTime = now
	if pos == target {
		ws.moving = false
		return
	}
	ws.target = target
	ws.moving = true
}

// Schedule implements Platform. Only one pending timer is kept — a newer
// call overrides any earlier pending one — and a time in the past is
// clamped to the session clock, so it fires before the next admission but
// the OnTimer callback never observes time running backwards.
func (s *Session) Schedule(at float64) {
	if at < s.now {
		at = s.now
	}
	s.timer = at
}
