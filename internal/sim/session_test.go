package sim

import (
	"math"
	"testing"

	"ftoa/internal/geo"
	"ftoa/internal/model"
)

func testMatcher(t *testing.T, mode Mode, hints Hints, onMatch func(Match)) *Matcher {
	t.Helper()
	m, err := NewMatcher(MatcherConfig{
		Mode:     mode,
		Velocity: 1,
		Bounds:   geo.NewRect(0, 0, 10, 10),
		Hints:    hints,
		OnMatch:  onMatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMatcherValidates(t *testing.T) {
	if _, err := NewMatcher(MatcherConfig{Velocity: 0, Bounds: geo.NewRect(0, 0, 1, 1)}); err == nil {
		t.Error("zero velocity accepted")
	}
	if _, err := NewMatcher(MatcherConfig{Velocity: 1}); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, err := NewMatcher(MatcherConfig{Velocity: 1, Bounds: geo.NewRect(0, 0, 1, 1), Mode: Mode(7)}); err == nil {
		t.Error("unknown mode accepted")
	}
}

// TestArrivalClockIsMonotonic: an admission carrying a time before the
// session clock is clamped up — objects cannot arrive in the past.
func TestArrivalClockIsMonotonic(t *testing.T) {
	var seen []float64
	alg := &scriptAlg{
		name:     "clock",
		onWorker: func(p Platform, w int, now float64) { seen = append(seen, now) },
		onTask:   func(p Platform, tk int, now float64) { seen = append(seen, now) },
	}
	s := testMatcher(t, Strict, Hints{}, nil).NewSession(alg)
	if _, err := s.AddWorker(model.Worker{Loc: geo.Pt(1, 1), Arrive: 5, Patience: 10}); err != nil {
		t.Fatal(err)
	}
	// Arrive=2 is in the session's past: admitted at now=5.
	h, err := s.AddWorker(model.Worker{Loc: geo.Pt(2, 2), Arrive: 2, Patience: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Worker(h).Arrive; got != 5 {
		t.Errorf("late worker admitted at %v, want clamped to 5", got)
	}
	if _, err := s.AddTask(model.Task{Loc: geo.Pt(3, 3), Release: 4, Expiry: 2}); err != nil {
		t.Fatal(err)
	}
	if got := s.Task(0).Release; got != 5 {
		t.Errorf("late task released at %v, want clamped to 5", got)
	}
	for _, now := range seen {
		if now != 5 {
			t.Errorf("arrival observed now=%v, want 5 (monotonic clock)", now)
		}
	}
	if s.Now() != 5 {
		t.Errorf("session clock %v, want 5", s.Now())
	}
}

// TestSchedulePastTimeFiresAtCurrentClock is the regression test for the
// single-pending-timer semantics: a timer scheduled in the past must fire
// before the next admission, at the *current* session time — OnTimer never
// observes time running backwards.
func TestSchedulePastTimeFiresAtCurrentClock(t *testing.T) {
	var fired []float64
	alg := &scriptAlg{name: "past-timer"}
	alg.onWorker = func(p Platform, w int, now float64) {
		if w == 0 {
			p.Schedule(1) // already in the past: the clock is at 3
		}
	}
	alg.onTimer = func(p Platform, now float64) { fired = append(fired, now) }
	s := testMatcher(t, Strict, Hints{}, nil).NewSession(alg)
	if _, err := s.AddWorker(model.Worker{Loc: geo.Pt(1, 1), Arrive: 3, Patience: 10}); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 0 {
		t.Fatalf("timer fired during the scheduling admission: %v", fired)
	}
	// The next admission (at t=7) must first deliver the overdue timer,
	// clamped to the clock value it was overdue at (3, not 1).
	var arrivedAt float64
	alg.onWorker = func(p Platform, w int, now float64) { arrivedAt = now }
	if _, err := s.AddWorker(model.Worker{Loc: geo.Pt(2, 2), Arrive: 7, Patience: 10}); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != 3 {
		t.Errorf("fired = %v, want [3] (past time clamped to schedule-time clock)", fired)
	}
	if arrivedAt != 7 {
		t.Errorf("arrival delivered at %v, want 7 after the timer", arrivedAt)
	}
}

// TestScheduleKeepsSinglePendingTimer: a newer Schedule overrides the
// earlier pending one; only the latest fires.
func TestScheduleKeepsSinglePendingTimer(t *testing.T) {
	var fired []float64
	alg := &scriptAlg{name: "override"}
	alg.onTimer = func(p Platform, now float64) { fired = append(fired, now) }
	s := testMatcher(t, Strict, Hints{}, nil).NewSession(alg)
	s.Schedule(2)
	s.Schedule(4) // overrides the pending 2
	s.Advance(10)
	if len(fired) != 1 || fired[0] != 4 {
		t.Errorf("fired = %v, want [4] (single pending timer, newest wins)", fired)
	}
}

func TestAdvanceFiresTimerChains(t *testing.T) {
	var fired []float64
	alg := &scriptAlg{name: "chain"}
	alg.onTimer = func(p Platform, now float64) {
		fired = append(fired, now)
		if now < 3 {
			p.Schedule(now + 1)
		}
	}
	s := testMatcher(t, Strict, Hints{}, nil).NewSession(alg)
	s.Schedule(1)
	if got := s.Advance(5); got != 5 {
		t.Errorf("Advance returned %v, want 5", got)
	}
	want := []float64{1, 2, 3}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	// Advance backwards is a no-op.
	if got := s.Advance(2); got != 5 {
		t.Errorf("backwards Advance moved clock to %v", got)
	}
}

// TestDrainAndOnMatch: committed pairs surface both through the callback
// (synchronously) and through Drain (incrementally).
func TestDrainAndOnMatch(t *testing.T) {
	var cb []Match
	alg := &scriptAlg{name: "drain"}
	alg.onTask = func(p Platform, tk int, now float64) {
		for w := 0; w < p.NumWorkers(); w++ {
			if p.TryMatch(w, tk, now) {
				return
			}
		}
	}
	s := testMatcher(t, Strict, Hints{}, func(m Match) { cb = append(cb, m) }).NewSession(alg)
	if _, err := s.AddWorker(model.Worker{Loc: geo.Pt(1, 1), Arrive: 0, Patience: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddTask(model.Task{Loc: geo.Pt(1, 2), Release: 1, Expiry: 5}); err != nil {
		t.Fatal(err)
	}
	got := s.Drain(nil)
	if len(got) != 1 || got[0] != (Match{Worker: 0, Task: 0, Time: 1}) {
		t.Fatalf("Drain = %v", got)
	}
	if len(cb) != 1 || cb[0] != got[0] {
		t.Fatalf("OnMatch saw %v, want %v", cb, got)
	}
	// Drain is incremental: nothing new yet.
	if again := s.Drain(nil); len(again) != 0 {
		t.Errorf("second Drain = %v, want empty", again)
	}
	// A later commit shows up in the next Drain only.
	if _, err := s.AddWorker(model.Worker{Loc: geo.Pt(5, 5), Arrive: 2, Patience: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddTask(model.Task{Loc: geo.Pt(5, 6), Release: 3, Expiry: 5}); err != nil {
		t.Fatal(err)
	}
	got = s.Drain(got)
	if len(got) != 2 || got[1] != (Match{Worker: 1, Task: 1, Time: 3}) {
		t.Fatalf("Drain after second match = %v", got)
	}
}

func TestFinishRejectsFurtherAdmissions(t *testing.T) {
	finishedAt := -1.0
	alg := &scriptAlg{name: "fin", onFinish: func(p Platform, now float64) { finishedAt = now }}
	s := testMatcher(t, Strict, Hints{Horizon: 9}, nil).NewSession(alg)
	if _, err := s.AddWorker(model.Worker{Loc: geo.Pt(1, 1), Arrive: 2, Patience: 10}); err != nil {
		t.Fatal(err)
	}
	s.Finish()
	if finishedAt != 9 {
		t.Errorf("OnFinish at %v, want hinted horizon 9", finishedAt)
	}
	if _, err := s.AddWorker(model.Worker{Loc: geo.Pt(1, 1), Arrive: 10, Patience: 1}); err != ErrFinished {
		t.Errorf("AddWorker after Finish: err = %v, want ErrFinished", err)
	}
	if _, err := s.AddTask(model.Task{Loc: geo.Pt(1, 1), Release: 10, Expiry: 1}); err != ErrFinished {
		t.Errorf("AddTask after Finish: err = %v, want ErrFinished", err)
	}
	// Finish is idempotent and accessors stay usable.
	s.Finish()
	if s.Matching().Size() != 0 || s.NumWorkers() != 1 {
		t.Error("post-finish accessors broken")
	}
}

// TestSessionResetReusesStorage: after Reset the session is empty, and the
// arena capacity survives so a second identical run appends into the same
// backing arrays.
func TestSessionResetReusesStorage(t *testing.T) {
	alg := &scriptAlg{name: "reset"}
	s := testMatcher(t, Strict, Hints{}, nil).NewSession(alg)
	for i := 0; i < 100; i++ {
		if _, err := s.AddWorker(model.Worker{Loc: geo.Pt(1, 1), Arrive: float64(i), Patience: 1}); err != nil {
			t.Fatal(err)
		}
	}
	capBefore := cap(s.workers)
	s.Finish()
	s.Reset(alg)
	if s.NumWorkers() != 0 || !math.IsInf(s.Now(), -1) || s.finished {
		t.Fatal("Reset did not rewind session state")
	}
	if !math.IsInf(s.timer, 1) {
		t.Fatal("Reset did not clear pending timer")
	}
	for i := 0; i < 100; i++ {
		if _, err := s.AddWorker(model.Worker{Loc: geo.Pt(1, 1), Arrive: float64(i), Patience: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if cap(s.workers) != capBefore {
		t.Errorf("worker arena reallocated: cap %d -> %d", capBefore, cap(s.workers))
	}
}

// TestAdmissionPathDoesNotAllocateAtSteadyState: once the arenas have
// grown to the traffic level, admitting arrivals through the session (the
// platform side of the per-arrival hot path) allocates nothing. Matches
// are excluded deliberately — the committed matching escapes to the
// caller, so its growth is the one unavoidable allocation.
func TestAdmissionPathDoesNotAllocateAtSteadyState(t *testing.T) {
	alg := &scriptAlg{name: "noop"}
	s := testMatcher(t, Strict, Hints{}, nil).NewSession(alg)
	feed := func() {
		for i := 0; i < 512; i++ {
			at := float64(i)
			if _, err := s.AddWorker(model.Worker{Loc: geo.Pt(1, 1), Arrive: at, Patience: 5}); err != nil {
				t.Fatal(err)
			}
			if _, err := s.AddTask(model.Task{Loc: geo.Pt(2, 2), Release: at, Expiry: 5}); err != nil {
				t.Fatal(err)
			}
			s.Dispatch(i, geo.Pt(3, 3), at)
			s.WorkerPos(i, at+0.5)
		}
	}
	feed() // grow the arenas
	allocs := testing.AllocsPerRun(10, func() {
		s.Reset(alg)
		feed()
	})
	if allocs != 0 {
		t.Errorf("steady-state admission allocates %v per 1024-arrival session, want 0", allocs)
	}
}

// TestRecordedTimestampsSurviveReplay: the clock starts unset, so a
// recorded stream replays with its timestamps intact — including negative
// ones (e.g. epoch-relative traces) — rather than being clamped to 0,
// which would silently extend deadlines.
func TestRecordedTimestampsSurviveReplay(t *testing.T) {
	var arrivals []float64
	alg := &scriptAlg{
		name:     "negative",
		onWorker: func(p Platform, w int, now float64) { arrivals = append(arrivals, now) },
	}
	s := testMatcher(t, Strict, Hints{}, nil).NewSession(alg)
	if _, err := s.AddWorker(model.Worker{Loc: geo.Pt(1, 1), Arrive: -5, Patience: 10}); err != nil {
		t.Fatal(err)
	}
	if got := s.Worker(0).Arrive; got != -5 {
		t.Errorf("recorded Arrive rewritten to %v, want -5", got)
	}
	if got := s.Worker(0).Deadline(); got != 5 {
		t.Errorf("deadline %v, want 5 (recorded arrival honored)", got)
	}
	if len(arrivals) != 1 || arrivals[0] != -5 {
		t.Errorf("arrival delivered at %v, want [-5]", arrivals)
	}
	// Finishing an all-negative-time session still lands at the clock
	// origin, like the replay engine's horizon handling.
	finishedAt := math.NaN()
	alg.onFinish = func(p Platform, now float64) { finishedAt = now }
	s.Finish()
	if finishedAt != 0 {
		t.Errorf("OnFinish at %v, want 0", finishedAt)
	}
}
