// Package sim is the event-driven simulation engine that replays an FTOA
// instance against an online assignment algorithm. It owns the ground
// truth the paper's platform would own: worker positions over time
// (including movement of dispatched workers at the shared velocity),
// availability, and the committed matching. Algorithms interact with it
// through the Platform interface and never mutate ground truth directly,
// so an algorithm bug cannot produce an invalid matching.
//
// Two validation modes are supported (see DESIGN.md §3.2):
//
//   - Strict: a match is committed only if the worker, departing its
//     current simulated position at commit time, can reach the task before
//     the task's deadline (and the task was released before the worker's
//     own deadline). This is the honest platform semantics.
//   - AssumeGuide: a match between two available objects always commits.
//     This mirrors the paper's analysis assumption that guide-based pairs
//     are feasible in reality, and reproduces the paper's example counts.
package sim

import (
	"math"
	"runtime"
	"time"

	"ftoa/internal/geo"
	"ftoa/internal/model"
)

// Mode selects the match-validation semantics.
type Mode uint8

const (
	// Strict validates travel feasibility from the worker's current
	// position at commit time.
	Strict Mode = iota
	// AssumeGuide commits any match between two available objects.
	AssumeGuide
)

func (m Mode) String() string {
	if m == Strict {
		return "strict"
	}
	return "assume-guide"
}

// Platform is the engine-side API visible to algorithms.
type Platform interface {
	// Instance returns the problem instance being replayed. Algorithms
	// must treat it as read-only.
	Instance() *model.Instance

	// WorkerPos returns worker w's simulated position at time now,
	// accounting for any movement ordered via Dispatch.
	WorkerPos(w int, now float64) geo.Point

	// WorkerAvailable reports whether worker w is unmatched and can still
	// be assigned some task released at time now (now < deadline).
	WorkerAvailable(w int, now float64) bool

	// TaskAvailable reports whether task t is unmatched and could still be
	// reached by some worker departing at time now (now ≤ deadline).
	TaskAvailable(t int, now float64) bool

	// TryMatch attempts to commit the pair (w, t) at time now and reports
	// whether the engine accepted it. Acceptance depends on the engine's
	// Mode; on success the pair is recorded irrevocably (Definition 4's
	// invariable constraint) and both objects become unavailable.
	TryMatch(w, t int, now float64) bool

	// Dispatch orders worker w to start moving from its current position
	// toward target at the shared velocity. A later Dispatch overrides an
	// earlier one. Dispatching a matched worker is a no-op.
	Dispatch(w int, target geo.Point, now float64)

	// Schedule asks the engine to invoke the algorithm's OnTimer at time
	// at. Only one pending timer is kept: a new call overrides any earlier
	// pending one. Times in the past fire before the next event.
	Schedule(at float64)
}

// Algorithm is an online assignment algorithm driven by the engine.
type Algorithm interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Init is called once before replay.
	Init(p Platform)
	// OnWorkerArrival handles a new worker (index into Instance.Workers).
	OnWorkerArrival(w int, now float64)
	// OnTaskArrival handles a new task (index into Instance.Tasks).
	OnTaskArrival(t int, now float64)
	// OnFinish is called once after the last event, so batch algorithms
	// can flush pending work.
	OnFinish(now float64)
}

// TimerAlgorithm is implemented by algorithms that use Platform.Schedule.
type TimerAlgorithm interface {
	Algorithm
	// OnTimer fires at a time previously passed to Schedule.
	OnTimer(now float64)
}

// Result summarises one replay.
type Result struct {
	Algorithm string
	Mode      Mode
	Matching  model.Matching
	// Elapsed is the wall-clock time spent inside the replay loop (guide
	// construction and instance generation are excluded, matching the
	// paper's decision to omit offline preprocessing from reported times).
	Elapsed time.Duration
	// AllocBytes is the heap allocated during the replay (TotalAlloc
	// delta), the closest portable analogue of the paper's memory metric.
	// It is 0 unless the engine was created with WithAllocTracking:
	// measuring it costs two stop-the-world runtime.ReadMemStats pauses
	// per Run, and the process-wide counter is meaningless when several
	// replays run concurrently.
	AllocBytes uint64
	// Attempted and Rejected count TryMatch calls and how many the engine
	// refused (always 0 in AssumeGuide mode for available pairs); the gap
	// quantifies the discretisation/prediction error the paper's Strict
	// assumption hides.
	Attempted int
	Rejected  int
	// Stats aggregates service-quality measures over committed matches.
	Stats MatchStats
}

// MatchStats aggregates platform-level service quality over the committed
// matches of one replay. All quantities are measured at commit time from
// the engine's simulated ground truth, so they are meaningful in both
// validation modes (in AssumeGuide they describe what the paper's counting
// implies physically).
type MatchStats struct {
	// TotalPickupDistance sums the remaining distance from each matched
	// worker's position at commit time to its task's location.
	TotalPickupDistance float64
	// TotalGuidedDistance sums the distance workers travelled under
	// dispatch guidance before being matched (or until the horizon for
	// unmatched dispatched workers it is not accumulated).
	TotalGuidedDistance float64
	// TotalTaskWait sums, over matched tasks, the time between the task's
	// release and the commit.
	TotalTaskWait float64
	// TotalWorkerIdle sums, over matched workers, the time between the
	// worker's arrival and the commit.
	TotalWorkerIdle float64
}

// MeanPickupDistance returns TotalPickupDistance averaged over matches.
func (s MatchStats) MeanPickupDistance(matches int) float64 {
	if matches == 0 {
		return 0
	}
	return s.TotalPickupDistance / float64(matches)
}

// MeanTaskWait returns TotalTaskWait averaged over matches.
func (s MatchStats) MeanTaskWait(matches int) float64 {
	if matches == 0 {
		return 0
	}
	return s.TotalTaskWait / float64(matches)
}

// Engine replays instances. Create one per (instance, mode) and call Run
// once per algorithm; Run resets per-run state. An Engine is not safe for
// concurrent use — use Clone to replay the same instance on several
// goroutines at once.
type Engine struct {
	in   *model.Instance
	mode Mode

	// measureAllocs enables the TotalAlloc delta in Result.AllocBytes at
	// the cost of two stop-the-world pauses per Run.
	measureAllocs bool

	events []model.Event

	// Per-run state.
	anchor     []geo.Point // position at anchorTime
	anchorTime []float64
	target     []geo.Point
	moving     []bool
	matchedW   []bool
	matchedT   []bool
	matching   model.Matching
	timer      float64 // pending timer or +Inf
	attempted  int
	rejected   int
	stats      MatchStats
	// origin remembers each worker's initial location so guided travel can
	// be measured at commit time.
	origin []geo.Point
}

// EngineOption tunes engine construction.
type EngineOption func(*Engine)

// WithAllocTracking enables per-run heap-allocation measurement
// (Result.AllocBytes). It costs two stop-the-world runtime.ReadMemStats
// pauses per Run and reads a process-wide counter, so leave it off on hot
// replay paths and whenever engines run concurrently.
func WithAllocTracking() EngineOption {
	return func(e *Engine) { e.measureAllocs = true }
}

// NewEngine prepares an engine for the instance. The event order is
// computed once and shared across runs (and across Clones).
func NewEngine(in *model.Instance, mode Mode, opts ...EngineOption) *Engine {
	n := len(in.Workers)
	e := &Engine{
		in:         in,
		mode:       mode,
		events:     in.Events(),
		anchor:     make([]geo.Point, n),
		anchorTime: make([]float64, n),
		target:     make([]geo.Point, n),
		moving:     make([]bool, n),
		matchedW:   make([]bool, n),
		matchedT:   make([]bool, len(in.Tasks)),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Clone returns a new engine over the same instance and mode that shares
// the immutable inputs (instance and precomputed event order) but owns all
// per-run mutable ground truth, so clones can Run concurrently on separate
// goroutines. Alloc tracking is NOT inherited: the counter it reads is
// process-wide and meaningless under concurrency.
func (e *Engine) Clone() *Engine {
	n := len(e.in.Workers)
	return &Engine{
		in:         e.in,
		mode:       e.mode,
		events:     e.events,
		anchor:     make([]geo.Point, n),
		anchorTime: make([]float64, n),
		target:     make([]geo.Point, n),
		moving:     make([]bool, n),
		matchedW:   make([]bool, n),
		matchedT:   make([]bool, len(e.in.Tasks)),
	}
}

// Instance implements Platform.
func (e *Engine) Instance() *model.Instance { return e.in }

// Mode returns the validation mode.
func (e *Engine) Mode() Mode { return e.mode }

func (e *Engine) reset() {
	if e.origin == nil {
		e.origin = make([]geo.Point, len(e.in.Workers))
	}
	for i := range e.anchor {
		e.anchor[i] = e.in.Workers[i].Loc
		e.anchorTime[i] = e.in.Workers[i].Arrive
		e.origin[i] = e.in.Workers[i].Loc
		e.moving[i] = false
		e.matchedW[i] = false
	}
	for i := range e.matchedT {
		e.matchedT[i] = false
	}
	// The matching escapes to the caller via Result, so it is the one
	// piece of per-run state that cannot be reused.
	e.matching = model.Matching{}
	e.timer = math.Inf(1)
	e.attempted = 0
	e.rejected = 0
	e.stats = MatchStats{}
}

// WorkerPos implements Platform.
func (e *Engine) WorkerPos(w int, now float64) geo.Point {
	if !e.moving[w] {
		return e.anchor[w]
	}
	elapsed := now - e.anchorTime[w]
	if elapsed <= 0 {
		return e.anchor[w]
	}
	total := e.anchor[w].Dist(e.target[w])
	traveled := elapsed * e.in.Velocity
	if traveled >= total {
		// Arrived: collapse the segment so future queries are O(1).
		e.anchor[w] = e.target[w]
		e.anchorTime[w] = now
		e.moving[w] = false
		return e.anchor[w]
	}
	return e.anchor[w].Lerp(e.target[w], traveled/total)
}

// WorkerAvailable implements Platform. In AssumeGuide mode deadlines are
// not enforced — the paper's counting assumes guide pairs are feasible, so
// an unmatched worker stays assignable; in Strict mode a task released at
// `now` must satisfy Sr < Sw + Dw.
func (e *Engine) WorkerAvailable(w int, now float64) bool {
	if e.matchedW[w] {
		return false
	}
	if e.mode == AssumeGuide {
		return true
	}
	return now < e.in.Workers[w].Deadline()
}

// TaskAvailable implements Platform. See WorkerAvailable for the mode
// semantics; in Strict mode a worker departing at `now` needs non-negative
// travel budget.
func (e *Engine) TaskAvailable(t int, now float64) bool {
	if e.matchedT[t] {
		return false
	}
	if e.mode == AssumeGuide {
		return true
	}
	return now <= e.in.Tasks[t].Deadline()
}

// TryMatch implements Platform.
func (e *Engine) TryMatch(w, t int, now float64) bool {
	e.attempted++
	if e.matchedW[w] || e.matchedT[t] {
		e.rejected++
		return false
	}
	if e.mode == Strict {
		worker := &e.in.Workers[w]
		task := &e.in.Tasks[t]
		if !model.FeasibleAt(worker, task, e.WorkerPos(w, now), now, e.in.Velocity) {
			e.rejected++
			return false
		}
	}
	pos := e.WorkerPos(w, now)
	e.matchedW[w] = true
	e.matchedT[t] = true
	e.matching.Add(w, t)
	e.stats.TotalPickupDistance += pos.Dist(e.in.Tasks[t].Loc)
	e.stats.TotalGuidedDistance += e.origin[w].Dist(pos)
	if wait := now - e.in.Tasks[t].Release; wait > 0 {
		e.stats.TotalTaskWait += wait
	}
	if idle := now - e.in.Workers[w].Arrive; idle > 0 {
		e.stats.TotalWorkerIdle += idle
	}
	return true
}

// Dispatch implements Platform.
func (e *Engine) Dispatch(w int, target geo.Point, now float64) {
	if e.matchedW[w] {
		return
	}
	pos := e.WorkerPos(w, now)
	e.anchor[w] = pos
	e.anchorTime[w] = now
	if pos == target {
		e.moving[w] = false
		return
	}
	e.target[w] = target
	e.moving[w] = true
}

// Schedule implements Platform.
func (e *Engine) Schedule(at float64) { e.timer = at }

// Run replays the instance against alg and returns the result. The
// matching is validated in Strict mode against the ideal-guidance
// predicate as a safety net; a violation panics, because it indicates an
// engine bug rather than bad input.
func (e *Engine) Run(alg Algorithm) Result {
	e.reset()
	alg.Init(e)

	timerAlg, hasTimer := alg.(TimerAlgorithm)

	var ms runtime.MemStats
	var allocBefore uint64
	if e.measureAllocs {
		runtime.ReadMemStats(&ms)
		allocBefore = ms.TotalAlloc
	}
	start := time.Now()

	lastTime := 0.0
	for _, ev := range e.events {
		if hasTimer {
			for e.timer <= ev.Time {
				at := e.timer
				e.timer = math.Inf(1)
				timerAlg.OnTimer(at)
			}
		}
		switch ev.Kind {
		case model.WorkerArrival:
			alg.OnWorkerArrival(ev.Index, ev.Time)
		case model.TaskArrival:
			alg.OnTaskArrival(ev.Index, ev.Time)
		}
		lastTime = ev.Time
	}
	// Fire any timer scheduled at or before the end of the horizon, then
	// let the algorithm flush.
	end := lastTime
	if e.in.Horizon > end {
		end = e.in.Horizon
	}
	if hasTimer {
		for e.timer <= end {
			at := e.timer
			e.timer = math.Inf(1)
			timerAlg.OnTimer(at)
		}
	}
	alg.OnFinish(end)

	elapsed := time.Since(start)
	var allocBytes uint64
	if e.measureAllocs {
		runtime.ReadMemStats(&ms)
		allocBytes = ms.TotalAlloc - allocBefore
	}

	res := Result{
		Algorithm:  alg.Name(),
		Mode:       e.mode,
		Matching:   e.matching,
		Elapsed:    elapsed,
		AllocBytes: allocBytes,
		Attempted:  e.attempted,
		Rejected:   e.rejected,
		Stats:      e.stats,
	}
	return res
}
