// Package sim owns the platform side of FTOA matching: the ground truth
// the paper's platform would own — worker positions over time (including
// movement of dispatched workers at the shared velocity), availability,
// and the committed matching. Algorithms interact with it through the
// Platform interface and never mutate ground truth directly, so an
// algorithm bug cannot produce an invalid matching.
//
// The core abstraction is the open-world Session (see session.go): workers
// and tasks are *admitted* at arrival time via AddWorker/AddTask, which
// return stable dense handles, and Advance drives timers. The session's
// output is a typed lifecycle event stream (SessionEvent): commits AND
// deadline expiries of unmatched objects, the paper's two-sided attrition
// made observable (DrainEvents / OnEvent; Drain / OnMatch remain as
// match-only compatibility wrappers). Live deployments (cmd/ftoa-serve)
// push real traffic straight into a Session — or into a grid of them via
// package shard; the closed-world Engine in this file is a thin replay
// driver that feeds a recorded instance's arrival events through the very
// same Session API, so experiments and benchmarks exercise the production
// code path.
//
// Two validation modes are supported (see DESIGN.md §3.2):
//
//   - Strict: a match is committed only if the worker, departing its
//     current simulated position at commit time, can reach the task before
//     the task's deadline (and the task was released before the worker's
//     own deadline). This is the honest platform semantics.
//   - AssumeGuide: a match between two available objects always commits.
//     This mirrors the paper's analysis assumption that guide-based pairs
//     are feasible in reality, and reproduces the paper's example counts.
package sim

import (
	"runtime"
	"time"

	"ftoa/internal/geo"
	"ftoa/internal/model"
)

// Mode selects the match-validation semantics.
type Mode uint8

const (
	// Strict validates travel feasibility from the worker's current
	// position at commit time.
	Strict Mode = iota
	// AssumeGuide commits any match between two available objects.
	AssumeGuide
)

func (m Mode) String() string {
	if m == Strict {
		return "strict"
	}
	return "assume-guide"
}

// Platform is the session-side API visible to algorithms. Workers and
// tasks are identified by the dense handles the session assigned at
// admission (0, 1, 2, … per side, in arrival order); the platform is
// open-world, so NumWorkers/NumTasks only ever grow and algorithms must
// not assume they have seen the full population.
type Platform interface {
	// Worker returns the admitted worker behind a handle. The pointed-to
	// value is immutable; the pointer stays valid for the session.
	Worker(w int) *model.Worker

	// Task returns the admitted task behind a handle.
	Task(t int) *model.Task

	// NumWorkers returns how many workers have been admitted so far.
	// Handles 0..NumWorkers()-1 are valid.
	NumWorkers() int

	// NumTasks returns how many tasks have been admitted so far.
	NumTasks() int

	// Velocity is the shared worker speed (distance per time unit).
	Velocity() float64

	// Bounds is the service area spatial algorithms should size for.
	Bounds() geo.Rect

	// Hints returns optional closed-world sizing information; all fields
	// may be zero in a live deployment. See Hints.
	Hints() Hints

	// WorkerPos returns worker w's simulated position at time now,
	// accounting for any movement ordered via Dispatch.
	WorkerPos(w int, now float64) geo.Point

	// WorkerAvailable reports whether worker w is unmatched and can still
	// be assigned some task released at time now (now < deadline).
	WorkerAvailable(w int, now float64) bool

	// TaskAvailable reports whether task t is unmatched and could still be
	// reached by some worker departing at time now (now ≤ deadline).
	TaskAvailable(t int, now float64) bool

	// TryMatch attempts to commit the pair (w, t) at time now and reports
	// whether the platform accepted it. Acceptance depends on the session's
	// Mode; on success the pair is recorded irrevocably (Definition 4's
	// invariable constraint) and both objects become unavailable.
	TryMatch(w, t int, now float64) bool

	// Dispatch orders worker w to start moving from its current position
	// toward target at the shared velocity. A later Dispatch overrides an
	// earlier one. Dispatching a matched worker is a no-op.
	Dispatch(w int, target geo.Point, now float64)

	// Schedule asks the session to invoke the algorithm's OnTimer at time
	// at. Exactly one timer is pending at a time: a new call overrides any
	// earlier pending one, so algorithms needing several outstanding
	// deadlines must multiplex them onto the single slot. Times in the
	// past are clamped to the session clock and fire before the next
	// admission — OnTimer never observes time running backwards.
	Schedule(at float64)
}

// Algorithm is an online assignment algorithm driven by a session.
type Algorithm interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Init is called once when the session starts (and again if a session
	// is Reset). The platform is empty at this point; sizing information,
	// if any, is in p.Hints().
	Init(p Platform)
	// OnWorkerArrival handles a newly admitted worker handle.
	OnWorkerArrival(w int, now float64)
	// OnTaskArrival handles a newly admitted task handle.
	OnTaskArrival(t int, now float64)
	// OnFinish is called once when the session finishes, so batch
	// algorithms can flush pending work.
	OnFinish(now float64)
}

// TimerAlgorithm is implemented by algorithms that use Platform.Schedule.
type TimerAlgorithm interface {
	Algorithm
	// OnTimer fires at a time previously passed to Schedule.
	OnTimer(now float64)
}

// Result summarises one replay.
type Result struct {
	Algorithm string
	Mode      Mode
	Matching  model.Matching
	// Elapsed is the wall-clock time spent inside the replay loop (guide
	// construction and instance generation are excluded, matching the
	// paper's decision to omit offline preprocessing from reported times).
	Elapsed time.Duration
	// AllocBytes is the heap allocated during the replay (TotalAlloc
	// delta), the closest portable analogue of the paper's memory metric.
	// It is 0 unless the engine was created with WithAllocTracking:
	// measuring it costs two stop-the-world runtime.ReadMemStats pauses
	// per Run, and the process-wide counter is meaningless when several
	// replays run concurrently.
	AllocBytes uint64
	// Attempted and Rejected count TryMatch calls and how many the engine
	// refused (always 0 in AssumeGuide mode for available pairs); the gap
	// quantifies the discretisation/prediction error the paper's Strict
	// assumption hides.
	Attempted int
	Rejected  int
	// ExpiredWorkers and ExpiredTasks count the objects that left the
	// system unserved — the two-sided attrition the paper's online model
	// implies but a match list cannot show. They are taken from the
	// session's lifecycle event stream (EventWorkerExpired /
	// EventTaskExpired); matched + expired can exceed the population in
	// AssumeGuide mode, where an expired object may still be matched
	// later under the paper's counting assumption.
	ExpiredWorkers int
	ExpiredTasks   int
	// Stats aggregates service-quality measures over committed matches.
	Stats MatchStats
}

// MatchStats aggregates platform-level service quality over the committed
// matches of one session. All quantities are measured at commit time from
// the simulated ground truth, so they are meaningful in both validation
// modes (in AssumeGuide they describe what the paper's counting implies
// physically).
type MatchStats struct {
	// TotalPickupDistance sums the remaining distance from each matched
	// worker's position at commit time to its task's location.
	TotalPickupDistance float64
	// TotalGuidedDistance sums the distance workers travelled under
	// dispatch guidance before being matched (or until the horizon for
	// unmatched dispatched workers it is not accumulated).
	TotalGuidedDistance float64
	// TotalTaskWait sums, over matched tasks, the time between the task's
	// release and the commit.
	TotalTaskWait float64
	// TotalWorkerIdle sums, over matched workers, the time between the
	// worker's arrival and the commit.
	TotalWorkerIdle float64
}

// MeanPickupDistance returns TotalPickupDistance averaged over matches.
func (s MatchStats) MeanPickupDistance(matches int) float64 {
	if matches == 0 {
		return 0
	}
	return s.TotalPickupDistance / float64(matches)
}

// MeanTaskWait returns TotalTaskWait averaged over matches.
func (s MatchStats) MeanTaskWait(matches int) float64 {
	if matches == 0 {
		return 0
	}
	return s.TotalTaskWait / float64(matches)
}

// Engine replays recorded instances through the open-world Session API: it
// is the bridge from the closed-world experiment harness (a materialised
// *model.Instance) to the streaming Matcher surface live deployments use.
// Create one per (instance, mode) and call Run once per algorithm; Run
// resets the underlying session. An Engine is not safe for concurrent use
// — use Clone to replay the same instance on several goroutines at once.
type Engine struct {
	in   *model.Instance
	mode Mode

	// measureAllocs enables the TotalAlloc delta in Result.AllocBytes at
	// the cost of two stop-the-world pauses per Run.
	measureAllocs bool

	events []model.Event

	sess *Session
	// h2w/h2t translate session handles back to instance indexes (they
	// differ when a side's arrivals are not sorted by time). identity
	// records whether translation is a no-op so the common sorted case
	// skips the copy.
	h2w, h2t []int
	identity bool
}

// EngineOption tunes engine construction.
type EngineOption func(*Engine)

// WithAllocTracking enables per-run heap-allocation measurement
// (Result.AllocBytes). It costs two stop-the-world runtime.ReadMemStats
// pauses per Run and reads a process-wide counter, so leave it off on hot
// replay paths and whenever engines run concurrently.
func WithAllocTracking() EngineOption {
	return func(e *Engine) { e.measureAllocs = true }
}

// NewEngine prepares an engine for the instance. The event order is
// computed once and shared across runs (and across Clones).
func NewEngine(in *model.Instance, mode Mode, opts ...EngineOption) *Engine {
	e := &Engine{
		in:     in,
		mode:   mode,
		events: in.Events(),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Clone returns a new engine over the same instance and mode that shares
// the immutable inputs (instance and precomputed event order) but owns its
// own session, so clones can Run concurrently on separate goroutines.
// Alloc tracking is NOT inherited: the counter it reads is process-wide
// and meaningless under concurrency.
func (e *Engine) Clone() *Engine {
	return &Engine{
		in:     e.in,
		mode:   e.mode,
		events: e.events,
	}
}

// Instance returns the problem instance being replayed.
func (e *Engine) Instance() *model.Instance { return e.in }

// Mode returns the validation mode.
func (e *Engine) Mode() Mode { return e.mode }

// matcherConfig derives the session configuration for the replay: the
// recorded instance supplies exact sizing hints, which is how replays keep
// closed-world algorithms (TGOA's phase split, index pre-sizing) behaving
// exactly as they did against the pre-materialised instance.
func (e *Engine) matcherConfig() MatcherConfig {
	return MatcherConfig{
		Mode:     e.mode,
		Velocity: e.in.Velocity,
		Bounds:   e.in.Bounds,
		Hints: Hints{
			ExpectedWorkers: len(e.in.Workers),
			ExpectedTasks:   len(e.in.Tasks),
			Horizon:         e.in.Horizon,
		},
	}
}

// Run replays the instance's recorded arrival stream through a Session
// driven by alg and returns the result, with matching pairs translated
// back to instance indexes.
func (e *Engine) Run(alg Algorithm) Result {
	if e.sess == nil {
		// Built directly (not via NewMatcher) so degenerate instances the
		// old engine tolerated — zero velocity, empty bounds — still replay.
		e.sess = newSession(e.matcherConfig(), alg)
	} else {
		e.sess.Reset(alg)
	}
	s := e.sess
	e.h2w = e.h2w[:0]
	e.h2t = e.h2t[:0]
	e.identity = true

	var ms runtime.MemStats
	var allocBefore uint64
	if e.measureAllocs {
		runtime.ReadMemStats(&ms)
		allocBefore = ms.TotalAlloc
	}
	start := time.Now()

	for _, ev := range e.events {
		switch ev.Kind {
		case model.WorkerArrival:
			if _, err := s.AddWorker(e.in.Workers[ev.Index]); err != nil {
				panic("sim: replay admission failed: " + err.Error())
			}
			if ev.Index != len(e.h2w) {
				e.identity = false
			}
			e.h2w = append(e.h2w, ev.Index)
		case model.TaskArrival:
			if _, err := s.AddTask(e.in.Tasks[ev.Index]); err != nil {
				panic("sim: replay admission failed: " + err.Error())
			}
			if ev.Index != len(e.h2t) {
				e.identity = false
			}
			e.h2t = append(e.h2t, ev.Index)
		}
	}
	s.Finish()

	elapsed := time.Since(start)
	var allocBytes uint64
	if e.measureAllocs {
		runtime.ReadMemStats(&ms)
		allocBytes = ms.TotalAlloc - allocBefore
	}

	matching := s.Matching()
	if !e.identity {
		translated := model.Matching{Pairs: make([]model.Pair, len(matching.Pairs))}
		for i, p := range matching.Pairs {
			translated.Pairs[i] = model.Pair{Worker: e.h2w[p.Worker], Task: e.h2t[p.Task]}
		}
		matching = translated
	}

	return Result{
		Algorithm:      alg.Name(),
		Mode:           e.mode,
		Matching:       matching,
		Elapsed:        elapsed,
		AllocBytes:     allocBytes,
		Attempted:      s.Attempted(),
		Rejected:       s.Rejected(),
		ExpiredWorkers: s.ExpiredWorkers(),
		ExpiredTasks:   s.ExpiredTasks(),
		Stats:          s.Stats(),
	}
}
