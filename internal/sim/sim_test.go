package sim

import (
	"math"
	"testing"

	"ftoa/internal/geo"
	"ftoa/internal/model"
)

func twoByTwo() *model.Instance {
	return &model.Instance{
		Velocity: 1,
		Bounds:   geo.NewRect(0, 0, 10, 10),
		Horizon:  20,
		Workers: []model.Worker{
			{ID: 0, Loc: geo.Pt(0, 0), Arrive: 0, Patience: 10},
			{ID: 1, Loc: geo.Pt(5, 5), Arrive: 1, Patience: 10},
		},
		Tasks: []model.Task{
			{ID: 0, Loc: geo.Pt(1, 0), Release: 2, Expiry: 3},
			{ID: 1, Loc: geo.Pt(9, 9), Release: 3, Expiry: 1},
		},
	}
}

// scriptAlg lets tests drive the platform directly from arrival hooks.
type scriptAlg struct {
	name     string
	onWorker func(p Platform, w int, now float64)
	onTask   func(p Platform, t int, now float64)
	onTimer  func(p Platform, now float64)
	onFinish func(p Platform, now float64)
	p        Platform
}

func (s *scriptAlg) Name() string    { return s.name }
func (s *scriptAlg) Init(p Platform) { s.p = p }
func (s *scriptAlg) OnFinish(now float64) {
	if s.onFinish != nil {
		s.onFinish(s.p, now)
	}
}
func (s *scriptAlg) OnWorkerArrival(w int, now float64) {
	if s.onWorker != nil {
		s.onWorker(s.p, w, now)
	}
}
func (s *scriptAlg) OnTaskArrival(t int, now float64) {
	if s.onTask != nil {
		s.onTask(s.p, t, now)
	}
}
func (s *scriptAlg) OnTimer(now float64) {
	if s.onTimer != nil {
		s.onTimer(s.p, now)
	}
}

// testSession opens a session shaped like the instance (same mode,
// velocity, bounds, hints) with every worker and task already admitted in
// event order, driven by a do-nothing script, so platform-level tests can
// poke ground truth directly. Handles equal instance indexes because
// twoByTwo's arrivals are time-sorted per side.
func testSession(t *testing.T, in *model.Instance, mode Mode) *Session {
	t.Helper()
	m, err := NewMatcher(MatcherConfig{
		Mode:     mode,
		Velocity: in.Velocity,
		Bounds:   in.Bounds,
		Hints: Hints{
			ExpectedWorkers: len(in.Workers),
			ExpectedTasks:   len(in.Tasks),
			Horizon:         in.Horizon,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := m.NewSession(&scriptAlg{name: "noop"})
	for _, ev := range in.Events() {
		switch ev.Kind {
		case model.WorkerArrival:
			if h, err := s.AddWorker(in.Workers[ev.Index]); err != nil || h != ev.Index {
				t.Fatalf("AddWorker(%d) = %d, %v", ev.Index, h, err)
			}
		case model.TaskArrival:
			if h, err := s.AddTask(in.Tasks[ev.Index]); err != nil || h != ev.Index {
				t.Fatalf("AddTask(%d) = %d, %v", ev.Index, h, err)
			}
		}
	}
	return s
}

func TestWorkerMovement(t *testing.T) {
	in := twoByTwo()
	s := testSession(t, in, Strict)
	// Worker 0 dispatched at t=0 from (0,0) to (6,8): distance 10, v=1.
	s.Dispatch(0, geo.Pt(6, 8), 0)
	p := s.WorkerPos(0, 5)
	if math.Abs(p.X-3) > 1e-9 || math.Abs(p.Y-4) > 1e-9 {
		t.Errorf("pos at t=5 = %v, want (3,4)", p)
	}
	// Arrival and beyond: clamps at target.
	p = s.WorkerPos(0, 10)
	if p != geo.Pt(6, 8) {
		t.Errorf("pos at t=10 = %v, want (6,8)", p)
	}
	p = s.WorkerPos(0, 15)
	if p != geo.Pt(6, 8) {
		t.Errorf("pos at t=15 = %v, want (6,8)", p)
	}
	// Re-dispatch mid-flight anchors at current position.
	s = testSession(t, in, Strict)
	s.Dispatch(0, geo.Pt(10, 0), 0) // heading east
	s.Dispatch(0, geo.Pt(5, 5), 2)  // from (2,0) turn north-east-ish
	p = s.WorkerPos(0, 2)
	if math.Abs(p.X-2) > 1e-9 || math.Abs(p.Y) > 1e-9 {
		t.Errorf("pos after re-dispatch = %v, want (2,0)", p)
	}
	// Query before arrival time returns the anchor.
	s = testSession(t, in, Strict)
	if got := s.WorkerPos(1, 0.5); got != geo.Pt(5, 5) {
		t.Errorf("pos before arrival = %v", got)
	}
}

func TestAvailability(t *testing.T) {
	in := twoByTwo()
	s := testSession(t, in, Strict)
	if !s.WorkerAvailable(0, 5) {
		t.Error("worker should be available before deadline")
	}
	if s.WorkerAvailable(0, 10) {
		t.Error("worker at exactly its deadline must be unavailable (Sr < Sw+Dw is strict)")
	}
	if !s.TaskAvailable(0, 5) {
		t.Error("task should be available at its deadline")
	}
	if s.TaskAvailable(0, 5.01) {
		t.Error("task past deadline must be unavailable")
	}
}

func TestTryMatchStrict(t *testing.T) {
	in := twoByTwo()
	s := testSession(t, in, Strict)
	// Worker 0 at (0,0), task 0 at (1,0) released t=2 expiry 3: at now=2,
	// travel 1 ≤ 3. Feasible.
	if !s.TryMatch(0, 0, 2) {
		t.Fatal("feasible match rejected")
	}
	// Double-match either side must fail.
	if s.TryMatch(0, 1, 3) {
		t.Error("matched worker reused")
	}
	if s.TryMatch(1, 0, 3) {
		t.Error("matched task reused")
	}
	// Worker 1 at (5,5) to task 1 at (9,9) released 3 expiry 1: distance
	// 5.66 > 1. Infeasible in strict mode.
	if s.TryMatch(1, 1, 3) {
		t.Error("infeasible match accepted in strict mode")
	}
	if s.Rejected() != 3 {
		t.Errorf("rejected = %d, want 3", s.Rejected())
	}
}

func TestTryMatchAssumeGuide(t *testing.T) {
	in := twoByTwo()
	s := testSession(t, in, AssumeGuide)
	// The same infeasible pair is accepted under the paper's assumption.
	if !s.TryMatch(1, 1, 3) {
		t.Error("assume-guide mode rejected an available pair")
	}
	// But uniqueness still holds.
	if s.TryMatch(1, 0, 3) {
		t.Error("matched worker reused in assume-guide mode")
	}
}

func TestStrictMatchAfterMovement(t *testing.T) {
	in := twoByTwo()
	s := testSession(t, in, Strict)
	// Task 1 at (9,9) released t=3 expiry 1 is unreachable from (5,5) at
	// t=3 (distance 5.66 > 1) but a worker dispatched at t=1 toward (9,9)
	// has covered 2 units by t=3 — still 3.66 away, infeasible.
	s.Dispatch(1, geo.Pt(9, 9), 1)
	// At t=3 the worker is 2 units along the diagonal from (5,5).
	pos := s.WorkerPos(1, 3)
	wantAlong := 2.0
	if math.Abs(pos.Dist(geo.Pt(5, 5))-wantAlong) > 1e-9 {
		t.Fatalf("worker traveled %v, want %v", pos.Dist(geo.Pt(5, 5)), wantAlong)
	}
	if s.TryMatch(1, 1, 3) {
		t.Error("still too far: match must be rejected")
	}
	// With a much later, easier task this would pass; emulate by moving
	// time forward: at t=6.5 the worker is ~5.5 along, 0.16 from (9,9).
	// Task deadline is 4 though, so the platform must still reject.
	if s.TryMatch(1, 1, 6.5) {
		t.Error("match after task deadline accepted")
	}
}

func TestDispatchIgnoredForMatched(t *testing.T) {
	in := twoByTwo()
	s := testSession(t, in, Strict)
	if !s.TryMatch(0, 0, 2) {
		t.Fatal("setup match failed")
	}
	s.Dispatch(0, geo.Pt(9, 9), 2)
	if s.wstate[0].moving {
		t.Error("matched worker should not start moving")
	}
}

func TestRunDeliversEventsInOrder(t *testing.T) {
	in := twoByTwo()
	e := NewEngine(in, Strict)
	var log []float64
	alg := &scriptAlg{
		name:     "script",
		onWorker: func(p Platform, w int, now float64) { log = append(log, now) },
		onTask:   func(p Platform, t int, now float64) { log = append(log, now) },
	}
	res := e.Run(alg)
	want := []float64{0, 1, 2, 3}
	if len(log) != len(want) {
		t.Fatalf("delivered %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("delivered %v, want %v", log, want)
		}
	}
	if res.Algorithm != "script" {
		t.Errorf("result algorithm = %q", res.Algorithm)
	}
}

func TestTimersFireBetweenEvents(t *testing.T) {
	in := twoByTwo()
	e := NewEngine(in, Strict)
	var fired []float64
	alg := &scriptAlg{
		name: "timer",
		onTimer: func(p Platform, now float64) {
			fired = append(fired, now)
			if now < 4 {
				p.Schedule(now + 1.5)
			}
		},
	}
	alg.onWorker = func(p Platform, w int, now float64) {
		if w == 0 {
			p.Schedule(0.5)
		}
	}
	e.Run(alg)
	want := []float64{0.5, 2.0, 3.5, 5.0}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestRunFinishesWithHorizon(t *testing.T) {
	in := twoByTwo()
	in.Horizon = 42
	e := NewEngine(in, Strict)
	finishedAt := -1.0
	alg := &scriptAlg{
		name:     "finish",
		onFinish: func(p Platform, now float64) { finishedAt = now },
	}
	e.Run(alg)
	if finishedAt != 42 {
		t.Errorf("OnFinish at %v, want horizon 42", finishedAt)
	}
}

func TestResultCountsAndValidity(t *testing.T) {
	in := twoByTwo()
	e := NewEngine(in, Strict)
	alg := &scriptAlg{
		name: "matcher",
		onTask: func(p Platform, t int, now float64) {
			// Try to match every admitted worker with every arriving task.
			for w := 0; w < p.NumWorkers(); w++ {
				if p.TryMatch(w, t, now) {
					return
				}
			}
		},
	}
	res := e.Run(alg)
	if res.Matching.Size() != 1 {
		t.Errorf("size = %d, want 1 (only worker0-task0 feasible)", res.Matching.Size())
	}
	if err := res.Matching.Validate(in); err != nil {
		t.Error(err)
	}
	if res.Attempted == 0 || res.Rejected != res.Attempted-1 {
		t.Errorf("attempted=%d rejected=%d", res.Attempted, res.Rejected)
	}
	if res.Elapsed < 0 {
		t.Error("elapsed negative")
	}
}

func TestRunIsRepeatable(t *testing.T) {
	in := twoByTwo()
	e := NewEngine(in, Strict)
	alg := &scriptAlg{
		name: "m",
		onTask: func(p Platform, t int, now float64) {
			for w := 0; w < p.NumWorkers(); w++ {
				if p.TryMatch(w, t, now) {
					return
				}
			}
		},
	}
	a := e.Run(alg).Matching.Size()
	b := e.Run(alg).Matching.Size()
	if a != b {
		t.Errorf("runs differ: %d vs %d", a, b)
	}
}

// TestRunTranslatesUnsortedArrivals replays an instance whose per-side
// slice order disagrees with arrival order, so session handles differ from
// instance indexes; Result.Matching must still be expressed in instance
// indexes.
func TestRunTranslatesUnsortedArrivals(t *testing.T) {
	in := &model.Instance{
		Velocity: 1,
		Bounds:   geo.NewRect(0, 0, 10, 10),
		Horizon:  20,
		Workers: []model.Worker{
			{ID: 0, Loc: geo.Pt(9, 9), Arrive: 4, Patience: 10}, // arrives second
			{ID: 1, Loc: geo.Pt(0, 0), Arrive: 0, Patience: 10}, // arrives first
		},
		Tasks: []model.Task{
			{ID: 0, Loc: geo.Pt(9, 8), Release: 5, Expiry: 3}, // near worker 0
			{ID: 1, Loc: geo.Pt(1, 0), Release: 2, Expiry: 3}, // near worker 1
		},
	}
	e := NewEngine(in, Strict)
	alg := &scriptAlg{
		name: "nearest",
		onTask: func(p Platform, tk int, now float64) {
			task := p.Task(tk)
			best, bestDist := -1, math.Inf(1)
			for w := 0; w < p.NumWorkers(); w++ {
				if !p.WorkerAvailable(w, now) {
					continue
				}
				if d := p.WorkerPos(w, now).Dist(task.Loc); d < bestDist {
					best, bestDist = w, d
				}
			}
			if best >= 0 {
				p.TryMatch(best, tk, now)
			}
		},
	}
	res := e.Run(alg)
	if res.Matching.Size() != 2 {
		t.Fatalf("size = %d, want 2", res.Matching.Size())
	}
	if err := res.Matching.Validate(in); err != nil {
		t.Fatalf("translated matching invalid: %v", err)
	}
	// The nearest pairing in instance indexes is w0-t0 and w1-t1.
	for _, p := range res.Matching.Pairs {
		if p.Worker != p.Task {
			t.Errorf("pair %+v, want worker==task under instance indexing", p)
		}
	}
}

func TestModeString(t *testing.T) {
	if Strict.String() != "strict" || AssumeGuide.String() != "assume-guide" {
		t.Error("mode strings")
	}
}
