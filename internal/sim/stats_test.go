package sim

import (
	"math"
	"testing"

	"ftoa/internal/geo"
	"ftoa/internal/model"
)

func TestMatchStatsAccumulation(t *testing.T) {
	in := &model.Instance{
		Velocity: 1,
		Bounds:   geo.NewRect(0, 0, 20, 20),
		Horizon:  20,
		Workers: []model.Worker{
			{ID: 0, Loc: geo.Pt(0, 0), Arrive: 0, Patience: 20},
		},
		Tasks: []model.Task{
			{ID: 0, Loc: geo.Pt(10, 0), Release: 6, Expiry: 10},
		},
	}
	e := NewEngine(in, Strict)
	alg := &scriptAlg{
		name: "stats",
		onWorker: func(p Platform, w int, now float64) {
			// Pre-move the worker toward where the task will appear.
			p.Dispatch(w, geo.Pt(10, 0), now)
		},
		onTask: func(p Platform, tk int, now float64) {
			if !p.TryMatch(0, tk, now) {
				t.Error("match rejected")
			}
		},
	}
	res := e.Run(alg)
	if res.Matching.Size() != 1 {
		t.Fatalf("size = %d", res.Matching.Size())
	}
	s := res.Stats
	// At t=6 the worker has covered 6 of the 10 units; pickup distance 4,
	// guided distance 6, task wait 0, worker idle 6.
	if math.Abs(s.TotalPickupDistance-4) > 1e-9 {
		t.Errorf("pickup distance = %v, want 4", s.TotalPickupDistance)
	}
	if math.Abs(s.TotalGuidedDistance-6) > 1e-9 {
		t.Errorf("guided distance = %v, want 6", s.TotalGuidedDistance)
	}
	if s.TotalTaskWait != 0 {
		t.Errorf("task wait = %v, want 0", s.TotalTaskWait)
	}
	if math.Abs(s.TotalWorkerIdle-6) > 1e-9 {
		t.Errorf("worker idle = %v, want 6", s.TotalWorkerIdle)
	}
	if math.Abs(s.MeanPickupDistance(res.Matching.Size())-4) > 1e-9 {
		t.Error("mean pickup")
	}
	if s.MeanTaskWait(0) != 0 || s.MeanPickupDistance(0) != 0 {
		t.Error("zero-match means should be 0")
	}
}

func TestMatchStatsTaskWait(t *testing.T) {
	in := &model.Instance{
		Velocity: 1,
		Bounds:   geo.NewRect(0, 0, 20, 20),
		Horizon:  20,
		Workers: []model.Worker{
			{ID: 0, Loc: geo.Pt(1, 0), Arrive: 5, Patience: 10},
		},
		Tasks: []model.Task{
			{ID: 0, Loc: geo.Pt(0, 0), Release: 2, Expiry: 10},
		},
	}
	e := NewEngine(in, Strict)
	alg := &scriptAlg{
		name: "wait",
		onWorker: func(p Platform, w int, now float64) {
			// Task has been waiting since t=2; worker arrives at t=5.
			if !p.TryMatch(w, 0, now) {
				t.Error("match rejected")
			}
		},
	}
	res := e.Run(alg)
	if res.Matching.Size() != 1 {
		t.Fatalf("size = %d", res.Matching.Size())
	}
	if math.Abs(res.Stats.TotalTaskWait-3) > 1e-9 {
		t.Errorf("task wait = %v, want 3", res.Stats.TotalTaskWait)
	}
	if res.Stats.TotalWorkerIdle != 0 {
		t.Errorf("worker idle = %v, want 0", res.Stats.TotalWorkerIdle)
	}
	if math.Abs(res.Stats.TotalPickupDistance-1) > 1e-9 {
		t.Errorf("pickup = %v, want 1", res.Stats.TotalPickupDistance)
	}
	if res.Stats.TotalGuidedDistance != 0 {
		t.Errorf("guided = %v, want 0 (never dispatched)", res.Stats.TotalGuidedDistance)
	}
}
