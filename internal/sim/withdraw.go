package sim

// Withdrawal — the retraction primitive behind cross-shard halo matching
// (package shard). A border object mirrored into several sessions must be
// retracted everywhere else the moment one copy is committed or the owner
// copy expires; WithdrawWorker/WithdrawTask are that retraction. A
// withdrawn object:
//
//   - is unavailable: WorkerAvailable/TaskAvailable report false in both
//     modes (unlike deadlines, which AssumeGuide ignores) and TryMatch
//     refuses any pair involving it;
//   - never expires here: its pending deadline entry is suppressed when it
//     pops, emitting no event and counting no expiry — the object's
//     lifecycle is owned by whichever session committed or expired it;
//   - is provably dead for Retire in both modes, so the next retirement
//     compacts it away.
//
// Withdrawal is silent (no lifecycle event) and does not advance the
// session clock: it removes an object from consideration, it does not
// report on it.

// WithdrawAwareAlgorithm is implemented by algorithms that want to drop
// their per-object state for a withdrawn handle eagerly. The hook is an
// optimisation, never a correctness requirement: the platform's
// availability checks already report a withdrawn object dead, so
// algorithms that filter lazily (the same paths that absorb expiries)
// stay correct without it. The hook runs synchronously from within
// WithdrawWorker/WithdrawTask and must not call back into the platform's
// mutating surface (TryMatch, Dispatch, Schedule); read-only accessors
// are safe.
type WithdrawAwareAlgorithm interface {
	Algorithm
	// OnWorkerWithdraw is invoked after worker w became withdrawn.
	OnWorkerWithdraw(w int, now float64)
	// OnTaskWithdraw is invoked after task t became withdrawn.
	OnTaskWithdraw(t int, now float64)
}

// WithdrawWorker retracts worker h from matching consideration (see the
// package comment above). It reports whether the worker was live — an
// already matched or already withdrawn worker is left untouched and the
// call is a no-op, which makes double retraction (a race two arbiters can
// lose) harmless. Withdrawing after Finish is likewise a silent no-op in
// effect: every deadline has already fired.
func (s *Session) WithdrawWorker(h int) bool {
	ws := &s.wstate[h]
	if ws.matched || ws.withdrawn {
		return false
	}
	ws.withdrawn = true
	s.withdrawnW++
	if s.withdrawAlg != nil {
		s.withdrawAlg.OnWorkerWithdraw(h, s.now)
	}
	return true
}

// WithdrawTask retracts task h; see WithdrawWorker.
func (s *Session) WithdrawTask(h int) bool {
	if s.tMatch[h] || s.tWithdrawn[h] {
		return false
	}
	s.tWithdrawn[h] = true
	s.withdrawnT++
	if s.withdrawAlg != nil {
		s.withdrawAlg.OnTaskWithdraw(h, s.now)
	}
	return true
}

// WithdrawnWorkers returns how many workers have been withdrawn over the
// session's lifetime (the count survives retirement).
func (s *Session) WithdrawnWorkers() int { return s.withdrawnW }

// WithdrawnTasks is WithdrawnWorkers for the task side.
func (s *Session) WithdrawnTasks() int { return s.withdrawnT }
