package sim

import (
	"testing"

	"ftoa/internal/geo"
	"ftoa/internal/model"
)

// greedy matches every arrival with the first available counterpart, the
// minimal algorithm that exercises TryMatch from both arrival hooks.
type greedy struct{ p Platform }

func (a *greedy) Name() string         { return "test-greedy" }
func (a *greedy) Init(p Platform)      { a.p = p }
func (a *greedy) OnFinish(now float64) {}
func (a *greedy) OnWorkerArrival(w int, now float64) {
	for t := 0; t < a.p.NumTasks(); t++ {
		if a.p.TaskAvailable(t, now) && a.p.TryMatch(w, t, now) {
			return
		}
	}
}
func (a *greedy) OnTaskArrival(t int, now float64) {
	for w := 0; w < a.p.NumWorkers(); w++ {
		if a.p.WorkerAvailable(w, now) && a.p.TryMatch(w, t, now) {
			return
		}
	}
}

// Remap makes the scan greedy retirable: it keeps no per-object state, so
// the hook is a no-op.
func (a *greedy) Remap(workers, tasks []int32) {}

// withdrawRecorder is a greedy algorithm recording its OnWithdraw calls.
type withdrawRecorder struct {
	greedy
	withdrawnW []int
	withdrawnT []int
}

func (a *withdrawRecorder) OnWorkerWithdraw(w int, now float64) {
	a.withdrawnW = append(a.withdrawnW, w)
}

func (a *withdrawRecorder) OnTaskWithdraw(t int, now float64) {
	a.withdrawnT = append(a.withdrawnT, t)
}

func withdrawSession(t *testing.T, mode Mode, alg Algorithm) *Session {
	t.Helper()
	m, err := NewMatcher(MatcherConfig{Mode: mode, Velocity: 1, Bounds: geo.NewRect(0, 0, 100, 100)})
	if err != nil {
		t.Fatal(err)
	}
	return m.NewSession(alg)
}

// TestWithdrawBlocksMatching: a withdrawn object is unavailable in both
// modes, TryMatch refuses pairs involving it, and the algorithm hook fires.
func TestWithdrawBlocksMatching(t *testing.T) {
	for _, mode := range []Mode{Strict, AssumeGuide} {
		alg := &withdrawRecorder{}
		s := withdrawSession(t, mode, alg)
		// idle keeps the algorithm from matching the pair on arrival: its
		// greedy scan only ever matches the arriving object, so admitting
		// both sides before any withdrawal needs the worker first and the
		// task far away... simpler: admit a worker, withdraw it, then admit
		// a reachable task — the greedy task scan must not commit.
		w, err := s.AddWorker(model.Worker{Loc: geo.Pt(10, 10), Arrive: 0, Patience: 100})
		if err != nil {
			t.Fatal(err)
		}
		if !s.WithdrawWorker(w) {
			t.Fatal("withdrawing a live worker reported dead")
		}
		if s.WithdrawWorker(w) {
			t.Fatal("double withdrawal reported live")
		}
		if s.WorkerAvailable(w, 0) {
			t.Fatalf("mode %v: withdrawn worker still available", mode)
		}
		tk, err := s.AddTask(model.Task{Loc: geo.Pt(10, 11), Release: 1, Expiry: 100})
		if err != nil {
			t.Fatal(err)
		}
		if s.Matches() != 0 {
			t.Fatalf("mode %v: algorithm matched a withdrawn worker", mode)
		}
		if s.TryMatch(w, tk, 1) {
			t.Fatalf("mode %v: TryMatch committed a withdrawn worker", mode)
		}
		if s.WithdrawnWorkers() != 1 || s.WithdrawnTasks() != 0 {
			t.Fatalf("withdrawn counts %d/%d, want 1/0", s.WithdrawnWorkers(), s.WithdrawnTasks())
		}
		if len(alg.withdrawnW) != 1 || alg.withdrawnW[0] != w {
			t.Fatalf("OnWorkerWithdraw calls %v, want [%d]", alg.withdrawnW, w)
		}
		// Task side.
		if !s.WithdrawTask(tk) {
			t.Fatal("withdrawing a live task reported dead")
		}
		if s.TaskAvailable(tk, 1) {
			t.Fatalf("mode %v: withdrawn task still available", mode)
		}
		if len(alg.withdrawnT) != 1 || alg.withdrawnT[0] != tk {
			t.Fatalf("OnTaskWithdraw calls %v, want [%d]", alg.withdrawnT, tk)
		}
	}
}

// TestWithdrawSuppressesExpiry: a withdrawn object's deadline fires no
// lifecycle event and counts no expiry — its lifecycle is owned elsewhere.
func TestWithdrawSuppressesExpiry(t *testing.T) {
	s := withdrawSession(t, Strict, &greedy{})
	w, _ := s.AddWorker(model.Worker{Loc: geo.Pt(10, 10), Arrive: 0, Patience: 5})
	tk, _ := s.AddTask(model.Task{Loc: geo.Pt(80, 80), Release: 0, Expiry: 5})
	s.WithdrawWorker(w)
	s.WithdrawTask(tk)
	s.Advance(100)
	s.Finish()
	if evs := s.DrainEvents(nil); len(evs) != 0 {
		t.Fatalf("withdrawn objects emitted events: %+v", evs)
	}
	if s.ExpiredWorkers() != 0 || s.ExpiredTasks() != 0 {
		t.Fatalf("expiry counts %d/%d, want 0/0", s.ExpiredWorkers(), s.ExpiredTasks())
	}
}

// TestWithdrawnObjectsRetireInBothModes: withdrawal makes an object
// provably dead even in AssumeGuide mode (where unmatched objects
// otherwise live forever), so the next Retire compacts it away.
func TestWithdrawnObjectsRetireInBothModes(t *testing.T) {
	for _, mode := range []Mode{Strict, AssumeGuide} {
		s := withdrawSession(t, mode, &greedy{})
		w, _ := s.AddWorker(model.Worker{Loc: geo.Pt(10, 10), Arrive: 0, Patience: 1000})
		s.WithdrawWorker(w)
		tk, _ := s.AddTask(model.Task{Loc: geo.Pt(90, 90), Release: 0, Expiry: 1000})
		s.WithdrawTask(tk)
		keepW, _ := s.AddWorker(model.Worker{Loc: geo.Pt(30, 70), Arrive: 1, Patience: 1000})
		s.Advance(2)
		s.DrainEvents(nil)
		dw, dt := s.Retire(s.Now())
		if dw != 1 || dt != 1 {
			t.Fatalf("mode %v: Retire dropped %d/%d, want the withdrawn 1/1", mode, dw, dt)
		}
		if s.NumWorkers() != 1 || s.NumTasks() != 0 {
			t.Fatalf("mode %v: live arenas %d/%d after retire, want 1/0", mode, s.NumWorkers(), s.NumTasks())
		}
		if got := s.Worker(0).Arrive; got != 1 {
			t.Fatalf("mode %v: survivor is not the un-withdrawn worker (arrive %v)", mode, got)
		}
		_ = keepW
		if s.WithdrawnWorkers() != 1 || s.WithdrawnTasks() != 1 {
			t.Fatalf("mode %v: lifetime withdrawal counts lost across retire", mode)
		}
	}
}

// TestCommitGateVeto: a vetoing gate turns an otherwise committable
// TryMatch into a rejection; a passing gate observes the exact pair.
func TestCommitGateVeto(t *testing.T) {
	var calls []Match
	allow := false
	m, err := NewMatcher(MatcherConfig{
		Mode:     Strict,
		Velocity: 1,
		Bounds:   geo.NewRect(0, 0, 100, 100),
		CommitGate: func(w, tk int, now float64) bool {
			calls = append(calls, Match{Worker: w, Task: tk, Time: now})
			return allow
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := m.NewSession(&greedy{})
	w, _ := s.AddWorker(model.Worker{Loc: geo.Pt(10, 10), Arrive: 0, Patience: 100})
	tk, _ := s.AddTask(model.Task{Loc: geo.Pt(10, 11), Release: 1, Expiry: 100})
	if len(calls) != 1 || calls[0].Worker != w || calls[0].Task != tk {
		t.Fatalf("gate calls %+v, want one for (%d,%d)", calls, w, tk)
	}
	if s.Matches() != 0 || s.Rejected() == 0 {
		t.Fatalf("vetoed commit landed: matches %d rejected %d", s.Matches(), s.Rejected())
	}
	allow = true
	if !s.TryMatch(w, tk, 1) {
		t.Fatal("gate-approved TryMatch refused")
	}
	if s.Matches() != 1 {
		t.Fatalf("matches %d after approved commit, want 1", s.Matches())
	}
}
