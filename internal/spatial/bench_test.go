package spatial

import (
	"testing"

	"ftoa/internal/geo"
	"ftoa/internal/mathx"
)

// populated builds an index with n uniformly distributed entries.
func populated(n int, seed uint64) (*Index, []geo.Point) {
	rng := mathx.NewRNG(seed)
	ix := NewIndex(bounds(), n)
	pts := make([]geo.Point, n)
	for i := 0; i < n; i++ {
		pts[i] = geo.Pt(rng.Float64()*100, rng.Float64()*100)
		ix.Insert(i, pts[i])
	}
	return ix, pts
}

// BenchmarkIndexNearest is the zero-alloc claim for the ring-scan hot path:
// at steady state a Nearest query touches only dense bucket storage and the
// reused cell scratch, so allocs/op must be 0.
func BenchmarkIndexNearest(b *testing.B) {
	ix, pts := populated(10000, 42)
	// One warm-up query grows the scratch buffer to its steady-state size.
	ix.Nearest(geo.Pt(50, 50), 100, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := pts[i%len(pts)]
		if id, _ := ix.Nearest(q, 20, nil); id < 0 {
			b.Fatal("no neighbour found")
		}
	}
}

// BenchmarkIndexWithin measures the range-scan path OPT and GR rely on; it
// must also be allocation-free once the destination slice has grown.
func BenchmarkIndexWithin(b *testing.B) {
	ix, pts := populated(10000, 43)
	dst := ix.Within(geo.Pt(50, 50), 10, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = ix.Within(pts[i%len(pts)], 10, dst[:0])
	}
	_ = dst
}

// BenchmarkIndexInsertRemove measures the churn path SimpleGreedy exercises
// on every arrival (insert the newcomer, remove the matched counterpart).
func BenchmarkIndexInsertRemove(b *testing.B) {
	ix, pts := populated(10000, 44)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := i % len(pts)
		ix.Remove(id)
		ix.Insert(id, pts[id])
	}
}

// BenchmarkIndexReset measures clearing a populated index for reuse.
func BenchmarkIndexReset(b *testing.B) {
	ix, pts := populated(10000, 45)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Reset()
		for id, p := range pts {
			ix.Insert(id, p)
		}
	}
}
