// Package spatial provides a dynamic grid-bucket index over points with
// expanding-ring nearest-neighbour search. SimpleGreedy uses it to find the
// closest feasible counterpart on every arrival (the operation the paper
// identifies as SimpleGreedy's bottleneck), GR uses it to enumerate batch
// candidates, and OPT uses a static variant to prune its bipartite graph.
//
// The index is deliberately decoupled from the prediction grid: it chooses
// its own bucket resolution from an expected population so that query cost
// does not degrade when experiments refine the prediction grid.
//
// Storage is dense: each bucket holds (id, point) entries inline, so the
// innermost ring scan of Nearest/Within walks contiguous memory with no map
// lookups, and queries allocate nothing at steady state (the cell scratch
// buffer is reused across calls). An id→(bucket, slot) table makes Remove
// O(1), and Reset clears the index without releasing any capacity so one
// index can serve many replay runs.
package spatial

import (
	"math"

	"ftoa/internal/geo"
)

// entry is one indexed point, stored inline in its bucket.
type entry struct {
	id int32
	p  geo.Point
}

// Index is a dynamic point index. IDs are caller-chosen non-negative ints,
// unique among the currently inserted entries.
type Index struct {
	grid    *geo.Grid
	buckets [][]entry
	// cell[id] is the bucket holding id, or -1 when id is absent; slot[id]
	// is its position within that bucket. Both grow with the largest id
	// ever inserted.
	cell    []int32
	slot    []int32
	n       int
	scratch []int
}

// NewIndex creates an index over bounds sized for roughly expectedN entries
// (used only to pick the bucket resolution; the index grows fine beyond it).
func NewIndex(bounds geo.Rect, expectedN int) *Index {
	if expectedN < 1 {
		expectedN = 1
	}
	// Aim for ~4 entries per bucket at expected population, capped so tiny
	// instances still get a few buckets and huge ones do not explode memory.
	side := int(math.Sqrt(float64(expectedN) / 4))
	if side < 1 {
		side = 1
	}
	if side > 1024 {
		side = 1024
	}
	g := geo.NewGrid(bounds, side, side)
	ix := &Index{
		grid:    g,
		buckets: make([][]entry, g.NumCells()),
		cell:    make([]int32, expectedN),
		slot:    make([]int32, expectedN),
	}
	for i := range ix.cell {
		ix.cell[i] = -1
	}
	return ix
}

// Len returns the number of entries currently in the index.
func (ix *Index) Len() int { return ix.n }

// grow extends the id tables to cover ids below n.
func (ix *Index) grow(n int) {
	for len(ix.cell) < n {
		ix.cell = append(ix.cell, -1)
		ix.slot = append(ix.slot, 0)
	}
}

// Insert adds id at point p. Inserting an id that is already present is a
// programming error and panics, as is a negative id.
func (ix *Index) Insert(id int, p geo.Point) {
	if id < 0 {
		panic("spatial: negative id")
	}
	if id >= len(ix.cell) {
		ix.grow(id + 1)
	}
	if ix.cell[id] >= 0 {
		panic("spatial: duplicate insert")
	}
	c := ix.grid.CellOf(p)
	b := ix.buckets[c]
	ix.cell[id] = int32(c)
	ix.slot[id] = int32(len(b))
	ix.buckets[c] = append(b, entry{id: int32(id), p: p})
	ix.n++
}

// Remove deletes id from the index in O(1). Removing an absent id is a
// no-op so callers can remove lazily-invalidated entries without tracking
// state.
func (ix *Index) Remove(id int) {
	if id < 0 || id >= len(ix.cell) || ix.cell[id] < 0 {
		return
	}
	c, s := ix.cell[id], ix.slot[id]
	b := ix.buckets[c]
	last := len(b) - 1
	if int(s) != last {
		moved := b[last]
		b[s] = moved
		ix.slot[moved.id] = s
	}
	ix.buckets[c] = b[:last]
	ix.cell[id] = -1
	ix.n--
}

// Remap rewrites every entry's id through m in place: an entry with id
// old becomes m[old], and entries mapped to a negative id are removed (the
// retired-handle convention of sim.Session.Retire). Points are untouched —
// a remap renames objects, it does not move them — so buckets only
// compact, never rehash, and no capacity is released. Ids at or beyond
// len(m) panic: the caller's table must cover every inserted id.
func (ix *Index) Remap(m []int32) {
	// Pass 1: clear the id tables for every present entry and compact each
	// bucket to its survivors. The tables are rebuilt in a second pass
	// because old and new id ranges overlap numerically.
	for c, b := range ix.buckets {
		k := 0
		for _, e := range b {
			ix.cell[e.id] = -1
			nid := m[e.id]
			if nid < 0 {
				ix.n--
				continue
			}
			e.id = nid
			b[k] = e
			k++
		}
		ix.buckets[c] = b[:k]
	}
	for c, b := range ix.buckets {
		for s, e := range b {
			if int(e.id) >= len(ix.cell) {
				ix.grow(int(e.id) + 1)
			}
			ix.cell[e.id] = int32(c)
			ix.slot[e.id] = int32(s)
		}
	}
}

// Reset removes every entry while keeping all allocated capacity (buckets,
// id tables, scratch), so an index can be reused across engine runs or
// batch windows with zero steady-state allocations.
func (ix *Index) Reset() {
	if ix.n == 0 {
		return
	}
	for c, b := range ix.buckets {
		if len(b) == 0 {
			continue
		}
		for _, e := range b {
			ix.cell[e.id] = -1
		}
		ix.buckets[c] = b[:0]
	}
	ix.n = 0
}

// Nearest returns the id of the entry nearest to p within maxDist for which
// accept returns true, or (-1, 0) if none qualifies. Entries for which
// accept returns false are skipped but kept. Accept may be nil, meaning
// every entry qualifies.
//
// The search expands ring by ring and stops as soon as the best candidate
// found so far is provably closer than anything in unexplored rings.
func (ix *Index) Nearest(p geo.Point, maxDist float64, accept func(id int) bool) (best int, bestDist float64) {
	best = -1
	bestDist = math.Inf(1)
	if maxDist < 0 || ix.n == 0 {
		return -1, 0
	}
	maxRing := ix.grid.MaxRing()
	for ring := 0; ring <= maxRing; ring++ {
		// Stop when no unexplored cell can beat the current best.
		inner := ix.grid.RingInnerDist(p, ring)
		if inner > maxDist || inner > bestDist {
			break
		}
		ix.scratch = ix.grid.RingCells(p, ring, ix.scratch[:0])
		for _, c := range ix.scratch {
			for _, e := range ix.buckets[c] {
				d := p.Dist(e.p)
				if d > maxDist || d >= bestDist {
					continue
				}
				if accept != nil && !accept(int(e.id)) {
					continue
				}
				best, bestDist = int(e.id), d
			}
		}
	}
	if best == -1 {
		return -1, 0
	}
	return best, bestDist
}

// Within appends to dst the ids of all entries within maxDist of p and
// returns the extended slice, in no particular order.
func (ix *Index) Within(p geo.Point, maxDist float64, dst []int) []int {
	if maxDist < 0 || ix.n == 0 {
		return dst
	}
	origin := ix.grid.CellOf(p)
	w, h := ix.grid.CellSize()
	// The query point sits up to half a cell diagonal from its cell center
	// and so does any entry from its own cell center, so centers within
	// maxDist + one full cell diagonal cover every cell intersecting the
	// query disk.
	slack := math.Sqrt(w*w + h*h)
	ix.scratch = ix.grid.CellsWithinRadius(origin, maxDist+slack, ix.scratch[:0])
	for _, c := range ix.scratch {
		for _, e := range ix.buckets[c] {
			if p.Dist(e.p) <= maxDist {
				dst = append(dst, int(e.id))
			}
		}
	}
	return dst
}

// ForEach calls fn for every entry until fn returns false. Iteration order
// is deterministic: by bucket, then by insertion order within the bucket
// (as modified by Remove's swap-deletion).
func (ix *Index) ForEach(fn func(id int, p geo.Point) bool) {
	for _, b := range ix.buckets {
		for _, e := range b {
			if !fn(int(e.id), e.p) {
				return
			}
		}
	}
}
