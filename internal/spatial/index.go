// Package spatial provides a dynamic grid-bucket index over points with
// expanding-ring nearest-neighbour search. SimpleGreedy uses it to find the
// closest feasible counterpart on every arrival (the operation the paper
// identifies as SimpleGreedy's bottleneck), GR uses it to enumerate batch
// candidates, and OPT uses a static variant to prune its bipartite graph.
//
// The index is deliberately decoupled from the prediction grid: it chooses
// its own bucket resolution from an expected population so that query cost
// does not degrade when experiments refine the prediction grid.
package spatial

import (
	"math"

	"ftoa/internal/geo"
)

// Index is a dynamic point index. IDs are caller-chosen non-negative ints,
// unique among the currently inserted entries.
type Index struct {
	grid    *geo.Grid
	buckets [][]int32
	loc     map[int32]geo.Point
	scratch []int
}

// NewIndex creates an index over bounds sized for roughly expectedN entries
// (used only to pick the bucket resolution; the index grows fine beyond it).
func NewIndex(bounds geo.Rect, expectedN int) *Index {
	if expectedN < 1 {
		expectedN = 1
	}
	// Aim for ~4 entries per bucket at expected population, capped so tiny
	// instances still get a few buckets and huge ones do not explode memory.
	side := int(math.Sqrt(float64(expectedN) / 4))
	if side < 1 {
		side = 1
	}
	if side > 1024 {
		side = 1024
	}
	g := geo.NewGrid(bounds, side, side)
	return &Index{
		grid:    g,
		buckets: make([][]int32, g.NumCells()),
		loc:     make(map[int32]geo.Point, expectedN),
	}
}

// Len returns the number of entries currently in the index.
func (ix *Index) Len() int { return len(ix.loc) }

// Insert adds id at point p. Inserting an id that is already present is a
// programming error and panics.
func (ix *Index) Insert(id int, p geo.Point) {
	key := int32(id)
	if _, ok := ix.loc[key]; ok {
		panic("spatial: duplicate insert")
	}
	ix.loc[key] = p
	c := ix.grid.CellOf(p)
	ix.buckets[c] = append(ix.buckets[c], key)
}

// Remove deletes id from the index. Removing an absent id is a no-op so
// callers can remove lazily-invalidated entries without tracking state.
func (ix *Index) Remove(id int) {
	key := int32(id)
	p, ok := ix.loc[key]
	if !ok {
		return
	}
	delete(ix.loc, key)
	c := ix.grid.CellOf(p)
	b := ix.buckets[c]
	for i, v := range b {
		if v == key {
			b[i] = b[len(b)-1]
			ix.buckets[c] = b[:len(b)-1]
			return
		}
	}
}

// Nearest returns the id of the entry nearest to p within maxDist for which
// accept returns true, or (-1, 0) if none qualifies. Entries for which
// accept returns false are skipped but kept. Accept may be nil, meaning
// every entry qualifies.
//
// The search expands ring by ring and stops as soon as the best candidate
// found so far is provably closer than anything in unexplored rings.
func (ix *Index) Nearest(p geo.Point, maxDist float64, accept func(id int) bool) (best int, bestDist float64) {
	best = -1
	bestDist = math.Inf(1)
	if maxDist < 0 || len(ix.loc) == 0 {
		return -1, 0
	}
	maxRing := ix.grid.MaxRing()
	for ring := 0; ring <= maxRing; ring++ {
		// Stop when no unexplored cell can beat the current best.
		inner := ix.grid.RingInnerDist(p, ring)
		if inner > maxDist || inner > bestDist {
			break
		}
		ix.scratch = ix.grid.RingCells(p, ring, ix.scratch[:0])
		for _, c := range ix.scratch {
			for _, id := range ix.buckets[c] {
				q := ix.loc[id]
				d := p.Dist(q)
				if d > maxDist || d >= bestDist {
					continue
				}
				if accept != nil && !accept(int(id)) {
					continue
				}
				best, bestDist = int(id), d
			}
		}
	}
	if best == -1 {
		return -1, 0
	}
	return best, bestDist
}

// Within appends to dst the ids of all entries within maxDist of p and
// returns the extended slice, in no particular order.
func (ix *Index) Within(p geo.Point, maxDist float64, dst []int) []int {
	if maxDist < 0 || len(ix.loc) == 0 {
		return dst
	}
	origin := ix.grid.CellOf(p)
	w, h := ix.grid.CellSize()
	// The query point sits up to half a cell diagonal from its cell center
	// and so does any entry from its own cell center, so centers within
	// maxDist + one full cell diagonal cover every cell intersecting the
	// query disk.
	slack := math.Sqrt(w*w + h*h)
	ix.scratch = ix.grid.CellsWithinRadius(origin, maxDist+slack, ix.scratch[:0])
	for _, c := range ix.scratch {
		for _, id := range ix.buckets[c] {
			if p.Dist(ix.loc[id]) <= maxDist {
				dst = append(dst, int(id))
			}
		}
	}
	return dst
}

// ForEach calls fn for every entry until fn returns false.
func (ix *Index) ForEach(fn func(id int, p geo.Point) bool) {
	for id, p := range ix.loc {
		if !fn(int(id), p) {
			return
		}
	}
}
