package spatial

import (
	"math"
	"sort"
	"testing"

	"ftoa/internal/geo"
	"ftoa/internal/mathx"
)

func bounds() geo.Rect { return geo.NewRect(0, 0, 100, 100) }

func TestInsertRemoveLen(t *testing.T) {
	ix := NewIndex(bounds(), 10)
	ix.Insert(1, geo.Pt(5, 5))
	ix.Insert(2, geo.Pt(50, 50))
	if ix.Len() != 2 {
		t.Fatalf("Len = %d", ix.Len())
	}
	ix.Remove(1)
	if ix.Len() != 1 {
		t.Fatalf("Len after remove = %d", ix.Len())
	}
	ix.Remove(1) // absent: no-op
	if ix.Len() != 1 {
		t.Fatalf("Len after double remove = %d", ix.Len())
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate insert should panic")
		}
	}()
	ix.Insert(2, geo.Pt(1, 1))
}

func TestNearestBasic(t *testing.T) {
	ix := NewIndex(bounds(), 10)
	ix.Insert(1, geo.Pt(10, 10))
	ix.Insert(2, geo.Pt(20, 10))
	ix.Insert(3, geo.Pt(90, 90))
	id, d := ix.Nearest(geo.Pt(12, 10), 1000, nil)
	if id != 1 || math.Abs(d-2) > 1e-9 {
		t.Errorf("Nearest = (%d, %v), want (1, 2)", id, d)
	}
	// maxDist excludes everything.
	if id, _ := ix.Nearest(geo.Pt(0, 0), 5, nil); id != -1 {
		t.Errorf("Nearest within 5 = %d, want -1", id)
	}
	// accept filter skips the closest.
	id, _ = ix.Nearest(geo.Pt(12, 10), 1000, func(id int) bool { return id != 1 })
	if id != 2 {
		t.Errorf("filtered Nearest = %d, want 2", id)
	}
	// Empty index.
	empty := NewIndex(bounds(), 1)
	if id, _ := empty.Nearest(geo.Pt(1, 1), 10, nil); id != -1 {
		t.Error("empty index should return -1")
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	rng := mathx.NewRNG(77)
	ix := NewIndex(bounds(), 200)
	type entry struct {
		id int
		p  geo.Point
	}
	var entries []entry
	for i := 0; i < 300; i++ {
		p := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		ix.Insert(i, p)
		entries = append(entries, entry{i, p})
	}
	for trial := 0; trial < 200; trial++ {
		q := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		maxD := rng.Float64() * 60
		// Brute force.
		wantID, wantD := -1, math.Inf(1)
		for _, e := range entries {
			d := q.Dist(e.p)
			if d <= maxD && d < wantD {
				wantID, wantD = e.id, d
			}
		}
		gotID, gotD := ix.Nearest(q, maxD, nil)
		if gotID != wantID {
			t.Fatalf("trial %d: Nearest = %d (%v), want %d (%v)", trial, gotID, gotD, wantID, wantD)
		}
		if wantID != -1 && math.Abs(gotD-wantD) > 1e-9 {
			t.Fatalf("trial %d: dist %v, want %v", trial, gotD, wantD)
		}
	}
}

func TestNearestAfterRemovals(t *testing.T) {
	rng := mathx.NewRNG(13)
	ix := NewIndex(bounds(), 100)
	live := map[int]geo.Point{}
	for i := 0; i < 200; i++ {
		p := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		ix.Insert(i, p)
		live[i] = p
	}
	// Remove half.
	for i := 0; i < 200; i += 2 {
		ix.Remove(i)
		delete(live, i)
	}
	for trial := 0; trial < 100; trial++ {
		q := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		wantID, wantD := -1, math.Inf(1)
		for id, p := range live {
			if d := q.Dist(p); d < wantD {
				wantID, wantD = id, d
			}
		}
		gotID, _ := ix.Nearest(q, math.Inf(1), nil)
		if gotID != wantID {
			t.Fatalf("trial %d: got %d want %d", trial, gotID, wantID)
		}
	}
}

func TestWithinMatchesBruteForce(t *testing.T) {
	rng := mathx.NewRNG(31)
	ix := NewIndex(bounds(), 150)
	pts := make(map[int]geo.Point)
	for i := 0; i < 250; i++ {
		p := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		ix.Insert(i, p)
		pts[i] = p
	}
	for trial := 0; trial < 100; trial++ {
		q := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		radius := rng.Float64() * 40
		got := ix.Within(q, radius, nil)
		var want []int
		for id, p := range pts {
			if q.Dist(p) <= radius {
				want = append(want, id)
			}
		}
		sort.Ints(got)
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("trial %d: |got|=%d |want|=%d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v want %v", trial, got, want)
			}
		}
	}
	if res := ix.Within(geo.Pt(0, 0), -1, nil); len(res) != 0 {
		t.Error("negative radius should return nothing")
	}
}

func TestForEach(t *testing.T) {
	ix := NewIndex(bounds(), 4)
	ix.Insert(1, geo.Pt(1, 1))
	ix.Insert(2, geo.Pt(2, 2))
	ix.Insert(3, geo.Pt(3, 3))
	seen := map[int]bool{}
	ix.ForEach(func(id int, p geo.Point) bool {
		seen[id] = true
		return true
	})
	if len(seen) != 3 {
		t.Errorf("ForEach visited %d entries", len(seen))
	}
	count := 0
	ix.ForEach(func(id int, p geo.Point) bool {
		count++
		return false // stop immediately
	})
	if count != 1 {
		t.Errorf("early stop visited %d entries", count)
	}
}

func TestNearestAcceptRejectsEverything(t *testing.T) {
	ix := NewIndex(bounds(), 10)
	ix.Insert(1, geo.Pt(10, 10))
	ix.Insert(2, geo.Pt(20, 20))
	ix.Insert(3, geo.Pt(30, 30))
	id, d := ix.Nearest(geo.Pt(15, 15), math.Inf(1), func(int) bool { return false })
	if id != -1 || d != 0 {
		t.Errorf("Nearest with all-rejecting accept = (%d, %v), want (-1, 0)", id, d)
	}
	// Rejected entries must survive the scan.
	if ix.Len() != 3 {
		t.Errorf("Len after rejected scan = %d, want 3", ix.Len())
	}
	if id, _ := ix.Nearest(geo.Pt(15, 15), math.Inf(1), nil); id == -1 {
		t.Error("entries lost after all-rejecting scan")
	}
}

func TestWithinAtBucketBoundaries(t *testing.T) {
	// bounds() is 100×100; an index sized for 400 entries gets a 10×10
	// bucket grid with 10-unit cells, so multiples of 10 sit exactly on
	// bucket boundaries.
	ix := NewIndex(bounds(), 400)
	on := []geo.Point{
		geo.Pt(10, 10), geo.Pt(20, 10), geo.Pt(10, 20),
		geo.Pt(0, 0), geo.Pt(50, 50),
	}
	for i, p := range on {
		ix.Insert(i, p)
	}
	// Query from a boundary point with a radius that lands other boundary
	// points exactly on the circle: Within uses <=, so they must appear.
	got := ix.Within(geo.Pt(10, 10), 10, nil)
	sort.Ints(got)
	want := []int{0, 1, 2} // (10,10) itself plus (20,10) and (10,20) at exactly 10
	if len(got) != len(want) {
		t.Fatalf("Within at boundary = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Within at boundary = %v, want %v", got, want)
		}
	}
	// Nearest from a boundary point must see entries in the adjacent cell.
	if id, _ := ix.Nearest(geo.Pt(10, 10), 0.5, nil); id != 0 {
		t.Errorf("Nearest at boundary = %d, want 0", id)
	}
}

func TestReset(t *testing.T) {
	ix := NewIndex(bounds(), 50)
	for i := 0; i < 50; i++ {
		ix.Insert(i, geo.Pt(float64(i*2), float64(i)))
	}
	ix.Reset()
	if ix.Len() != 0 {
		t.Fatalf("Len after Reset = %d", ix.Len())
	}
	if id, _ := ix.Nearest(geo.Pt(50, 25), math.Inf(1), nil); id != -1 {
		t.Errorf("Nearest on reset index = %d, want -1", id)
	}
	if got := ix.Within(geo.Pt(50, 25), 1000, nil); len(got) != 0 {
		t.Errorf("Within on reset index = %v, want empty", got)
	}
	// Every id must be re-insertable after Reset, and queries must work.
	for i := 0; i < 50; i++ {
		ix.Insert(i, geo.Pt(float64(i*2), float64(i)))
	}
	if ix.Len() != 50 {
		t.Fatalf("Len after re-insert = %d", ix.Len())
	}
	if id, _ := ix.Nearest(geo.Pt(0, 0), 1, nil); id != 0 {
		t.Errorf("Nearest after Reset+re-insert = %d, want 0", id)
	}
	// Reset of an empty index is a no-op.
	empty := NewIndex(bounds(), 4)
	empty.Reset()
	if empty.Len() != 0 {
		t.Error("Reset of empty index changed Len")
	}
}

func TestQueriesDoNotAllocateAtSteadyState(t *testing.T) {
	rng := mathx.NewRNG(5)
	ix := NewIndex(bounds(), 500)
	pts := make([]geo.Point, 500)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64()*100, rng.Float64()*100)
		ix.Insert(i, pts[i])
	}
	// Warm up the scratch buffer.
	ix.Nearest(geo.Pt(50, 50), 100, nil)
	dst := ix.Within(geo.Pt(50, 50), 30, nil)

	if allocs := testing.AllocsPerRun(100, func() {
		ix.Nearest(geo.Pt(37, 61), 25, nil)
	}); allocs != 0 {
		t.Errorf("Nearest allocates %.1f objects/op at steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		dst = ix.Within(geo.Pt(37, 61), 25, dst[:0])
	}); allocs != 0 {
		t.Errorf("Within allocates %.1f objects/op at steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		ix.Remove(7)
		ix.Insert(7, pts[7])
	}); allocs != 0 {
		t.Errorf("Remove+Insert allocates %.1f objects/op at steady state, want 0", allocs)
	}
}

func TestNegativeIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative id insert should panic")
		}
	}()
	NewIndex(bounds(), 4).Insert(-1, geo.Pt(1, 1))
}

func TestPointsOutsideBounds(t *testing.T) {
	// Entries outside the nominal bounds still work (clamped buckets).
	ix := NewIndex(bounds(), 10)
	ix.Insert(1, geo.Pt(-50, -50))
	ix.Insert(2, geo.Pt(150, 150))
	id, _ := ix.Nearest(geo.Pt(-40, -40), 1000, nil)
	if id != 1 {
		t.Errorf("Nearest = %d, want 1", id)
	}
	got := ix.Within(geo.Pt(140, 140), 20, nil)
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("Within = %v, want [2]", got)
	}
}

// TestRemap: ids are rewritten in place, negatives removed, and the
// re-keyed index answers queries and O(1) removes exactly as a freshly
// built one would.
func TestRemap(t *testing.T) {
	rng := mathx.NewRNG(7)
	ix := NewIndex(bounds(), 64)
	const n = 200
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64()*100, rng.Float64()*100)
		ix.Insert(i, pts[i])
	}
	// Retire every third id; survivors compact densely in order.
	m := make([]int32, n)
	next := int32(0)
	for i := range m {
		if i%3 == 0 {
			m[i] = -1
			continue
		}
		m[i] = next
		next++
	}
	ix.Remap(m)
	if ix.Len() != int(next) {
		t.Fatalf("Len = %d after remap, want %d", ix.Len(), next)
	}
	// Reference index built directly in the new id space.
	want := NewIndex(bounds(), 64)
	for old, nid := range m {
		if nid >= 0 {
			want.Insert(int(nid), pts[old])
		}
	}
	for trial := 0; trial < 50; trial++ {
		q := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		gotID, gotD := ix.Nearest(q, 40, nil)
		wantID, wantD := want.Nearest(q, 40, nil)
		if gotID != wantID || math.Abs(gotD-wantD) > 1e-12 {
			t.Fatalf("Nearest(%v) = (%d, %v), want (%d, %v)", q, gotID, gotD, wantID, wantD)
		}
	}
	// Removes through the rebuilt id tables behave.
	ix.Remove(0)
	want.Remove(0)
	if ix.Len() != want.Len() {
		t.Fatalf("Len after remove = %d, want %d", ix.Len(), want.Len())
	}
	got := sort.IntSlice(ix.Within(geo.Pt(50, 50), 200, nil))
	exp := sort.IntSlice(want.Within(geo.Pt(50, 50), 200, nil))
	sort.Sort(got)
	sort.Sort(exp)
	if len(got) != len(exp) {
		t.Fatalf("Within sizes differ: %d vs %d", len(got), len(exp))
	}
	for i := range exp {
		if got[i] != exp[i] {
			t.Fatalf("Within[%d] = %d, want %d", i, got[i], exp[i])
		}
	}
}
