// Package timeslot partitions the experiment horizon into the discrete
// "time slots" the paper's offline prediction and guide generation operate
// on (§3.1.1): a horizon [0, Horizon) divided into Count equal slots.
//
// Times are float64 in slot-agnostic time units (the synthetic experiments
// use "slots of 15 minutes" but all algorithms only care about relative
// durations, so the unit is arbitrary as long as it is consistent with
// worker velocity).
package timeslot

import (
	"fmt"
	"math"
)

// Slotting describes a partition of [0, Horizon) into Count equal slots.
//
// A Slotting built with NewAnchored additionally treats the timeline as
// periodic: SlotOf first shifts the query by an anchor offset and wraps
// it modulo the horizon, so an ever-growing clock (a server's uptime
// seconds) keeps resolving to the right recurring slot (the wall-clock
// time of day, or day of week) instead of saturating at the last slot.
type Slotting struct {
	Horizon float64 // total duration of the timeline
	Count   int     // number of slots (t in the paper)

	width  float64
	offset float64 // added to queries before slot resolution
	wrap   bool    // wrap shifted queries modulo Horizon
}

// New builds a Slotting. It panics on non-positive horizon or count, which
// indicate a misconfigured experiment rather than bad data.
func New(horizon float64, count int) *Slotting {
	if horizon <= 0 {
		panic(fmt.Sprintf("timeslot: non-positive horizon %v", horizon))
	}
	if count <= 0 {
		panic(fmt.Sprintf("timeslot: non-positive slot count %d", count))
	}
	return &Slotting{Horizon: horizon, Count: count, width: horizon / float64(count)}
}

// NewAnchored builds a periodic Slotting: SlotOf(t) resolves the slot
// containing mod(t+offset, horizon). offset anchors time zero of the
// query clock to a point of the recurring timeline — e.g. a server that
// boots at 14:00 on a Wednesday passes the seconds-into-week of that
// instant, so uptime second 0 lands mid-Wednesday and uptime keeps
// cycling through the week forever.
func NewAnchored(horizon float64, count int, offset float64) *Slotting {
	s := New(horizon, count)
	s.offset = offset
	s.wrap = true
	return s
}

// Width returns the duration of one slot.
func (s *Slotting) Width() float64 { return s.width }

// SlotOf returns the index of the slot containing time tm. For a plain
// Slotting, times before 0 clamp to slot 0 and times at or beyond the
// horizon clamp to the last slot, mirroring geo.Grid.CellOf so that every
// event maps somewhere. An anchored Slotting shifts and wraps first, so
// no query clamps (every instant belongs to a recurring slot).
func (s *Slotting) SlotOf(tm float64) int {
	if s.wrap {
		tm = math.Mod(tm+s.offset, s.Horizon)
		if tm < 0 {
			tm += s.Horizon
		}
	}
	i := int(tm / s.width)
	if i < 0 {
		return 0
	}
	if i >= s.Count {
		return s.Count - 1
	}
	return i
}

// Start returns the start time of slot i.
func (s *Slotting) Start(i int) float64 { return float64(i) * s.width }

// End returns the end time (exclusive) of slot i.
func (s *Slotting) End(i int) float64 { return float64(i+1) * s.width }

// Mid returns the midpoint time of slot i. The guide uses slot starts as
// representative times (conservative for worker departure), but Mid is
// exposed for predictors that want slot-centred features.
func (s *Slotting) Mid(i int) float64 { return (float64(i) + 0.5) * s.width }

// Contains reports whether tm falls inside [0, Horizon).
func (s *Slotting) Contains(tm float64) bool { return tm >= 0 && tm < s.Horizon }

// CellKey identifies one (time slot, grid area) prediction cell. The paper
// writes these as the pair (Slot i, Area j) with counts a_ij / b_ij.
type CellKey struct {
	Slot int // time slot index
	Area int // flattened grid cell index
}

// Flatten maps a CellKey to a single integer given the number of grid
// areas, enabling dense arrays over all (slot, area) cells.
func (k CellKey) Flatten(numAreas int) int { return k.Slot*numAreas + k.Area }

// UnflattenCell reverses CellKey.Flatten.
func UnflattenCell(flat, numAreas int) CellKey {
	return CellKey{Slot: flat / numAreas, Area: flat % numAreas}
}
