package timeslot

import (
	"testing"
	"testing/quick"
)

func TestAnchoredSlotOf(t *testing.T) {
	// A day of 100 units split into 4 slots, anchored at 30 units into
	// the day: query time 0 lands in slot 1, and the mapping wraps
	// forever instead of clamping at the horizon.
	s := NewAnchored(100, 4, 30)
	cases := []struct {
		tm   float64
		want int
	}{
		{0, 1},     // 30 into the day
		{19, 1},    // 49
		{20, 2},    // 50
		{69, 3},    // 99
		{70, 0},    // wraps to 0
		{170, 0},   // a full day later: same slot
		{100, 1},   // one day of uptime: back to the boot slot
		{1030, 2},  // ten days plus 30: (1030+30) mod 100 = 60 -> slot 2
		{-30, 0},   // negative query shifts below zero and wraps up
		{-130, 0},  // and again a day earlier
		{99999, 1}, // far future still resolves: (99999+30) mod 100 = 29 -> slot 1
	}
	for _, c := range cases {
		if got := s.SlotOf(c.tm); got != c.want {
			t.Errorf("anchored SlotOf(%v) = %d, want %d", c.tm, got, c.want)
		}
	}
	// A plain Slotting still clamps.
	p := New(100, 4)
	if got := p.SlotOf(1000); got != 3 {
		t.Errorf("plain SlotOf(1000) = %d, want clamp to 3", got)
	}
	if p.SlotOf(-5) != 0 {
		t.Error("plain SlotOf(-5) != 0")
	}
}

func TestSlotOf(t *testing.T) {
	s := New(48, 48) // 48 slots of width 1
	tests := []struct {
		tm   float64
		want int
	}{
		{0, 0}, {0.99, 0}, {1, 1}, {47.5, 47},
		{48, 47},  // clamps at horizon
		{-3, 0},   // clamps below
		{500, 47}, // clamps far above
	}
	for _, tt := range tests {
		if got := s.SlotOf(tt.tm); got != tt.want {
			t.Errorf("SlotOf(%v) = %d, want %d", tt.tm, got, tt.want)
		}
	}
}

func TestStartEndMid(t *testing.T) {
	s := New(24, 12) // width 2
	if s.Width() != 2 {
		t.Fatalf("Width = %v", s.Width())
	}
	if s.Start(3) != 6 || s.End(3) != 8 || s.Mid(3) != 7 {
		t.Errorf("Start/End/Mid(3) = %v/%v/%v", s.Start(3), s.End(3), s.Mid(3))
	}
}

func TestContains(t *testing.T) {
	s := New(10, 5)
	if !s.Contains(0) || !s.Contains(9.99) {
		t.Error("Contains should include [0, horizon)")
	}
	if s.Contains(-0.1) || s.Contains(10) {
		t.Error("Contains should exclude outside")
	}
}

func TestSlotRoundTrip(t *testing.T) {
	s := New(96, 96)
	if err := quick.Check(func(raw uint8) bool {
		i := int(raw) % s.Count
		// The start and mid of slot i must map back to slot i.
		return s.SlotOf(s.Start(i)) == i && s.SlotOf(s.Mid(i)) == i
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCellKeyFlatten(t *testing.T) {
	const areas = 600
	if err := quick.Check(func(slotRaw, areaRaw uint16) bool {
		k := CellKey{Slot: int(slotRaw) % 144, Area: int(areaRaw) % areas}
		return UnflattenCell(k.Flatten(areas), areas) == k
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNewPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 5) },
		func() { New(-1, 5) },
		func() { New(10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
