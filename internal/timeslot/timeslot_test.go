package timeslot

import (
	"testing"
	"testing/quick"
)

func TestSlotOf(t *testing.T) {
	s := New(48, 48) // 48 slots of width 1
	tests := []struct {
		tm   float64
		want int
	}{
		{0, 0}, {0.99, 0}, {1, 1}, {47.5, 47},
		{48, 47},  // clamps at horizon
		{-3, 0},   // clamps below
		{500, 47}, // clamps far above
	}
	for _, tt := range tests {
		if got := s.SlotOf(tt.tm); got != tt.want {
			t.Errorf("SlotOf(%v) = %d, want %d", tt.tm, got, tt.want)
		}
	}
}

func TestStartEndMid(t *testing.T) {
	s := New(24, 12) // width 2
	if s.Width() != 2 {
		t.Fatalf("Width = %v", s.Width())
	}
	if s.Start(3) != 6 || s.End(3) != 8 || s.Mid(3) != 7 {
		t.Errorf("Start/End/Mid(3) = %v/%v/%v", s.Start(3), s.End(3), s.Mid(3))
	}
}

func TestContains(t *testing.T) {
	s := New(10, 5)
	if !s.Contains(0) || !s.Contains(9.99) {
		t.Error("Contains should include [0, horizon)")
	}
	if s.Contains(-0.1) || s.Contains(10) {
		t.Error("Contains should exclude outside")
	}
}

func TestSlotRoundTrip(t *testing.T) {
	s := New(96, 96)
	if err := quick.Check(func(raw uint8) bool {
		i := int(raw) % s.Count
		// The start and mid of slot i must map back to slot i.
		return s.SlotOf(s.Start(i)) == i && s.SlotOf(s.Mid(i)) == i
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCellKeyFlatten(t *testing.T) {
	const areas = 600
	if err := quick.Check(func(slotRaw, areaRaw uint16) bool {
		k := CellKey{Slot: int(slotRaw) % 144, Area: int(areaRaw) % areas}
		return UnflattenCell(k.Flatten(areas), areas) == k
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNewPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 5) },
		func() { New(-1, 5) },
		func() { New(10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
