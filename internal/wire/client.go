// Client side of the wire protocol: a connection with pipelined batch
// RPCs and an optional event subscription, demultiplexed by a single
// reader goroutine. Used by cmd/ftoa-loadgen and the serve-layer tests.
package wire

import (
	"errors"
	"net"
	"sync"
)

// ErrClosed is returned by Do after Close (or after the connection died).
var ErrClosed = errors.New("wire: client closed")

// EventHandler consumes one pushed Events frame: the decoded batch plus
// the cursor the stream resumes at. Called from the client's reader
// goroutine — do not block for long or call back into Do.
type EventHandler func(next uint64, evs []Event)

// GoneHandler is called when the server reports the subscription fell
// behind retention: oldest is the cursor the stream restarts from.
type GoneHandler func(oldest uint64)

// Client is one wire connection. Do is safe for concurrent use and
// pipelines: many batches may be in flight, correlated by id.
type Client struct {
	cn  *Conn
	ack HelloAck

	mu       sync.Mutex
	inflight map[uint64]chan []Result
	nextID   uint64
	err      error // set once the reader dies; sticky

	onEvents EventHandler
	onGone   GoneHandler

	readerDone chan struct{}
}

// Dial connects, handshakes, and starts the reader.
func Dial(addr string) (*Client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(c)
}

// NewClient handshakes over an established stream and starts the reader.
// On error the stream is closed.
func NewClient(c net.Conn) (*Client, error) {
	cn := NewConn(c)
	ack, err := ClientHandshake(cn)
	if err != nil {
		cn.Close()
		return nil, err
	}
	cl := &Client{
		cn:         cn,
		ack:        ack,
		inflight:   make(map[uint64]chan []Result),
		readerDone: make(chan struct{}),
	}
	go cl.readLoop()
	return cl, nil
}

// Hello returns the server's handshake answer (shard count, clock).
func (cl *Client) Hello() HelloAck { return cl.ack }

// Subscribe asks for event push starting at since (SinceNow for the
// stream head). Handlers run on the reader goroutine. Call at most once,
// before the events of interest are produced.
func (cl *Client) Subscribe(since uint64, onEvents EventHandler, onGone GoneHandler) error {
	cl.mu.Lock()
	cl.onEvents = onEvents
	cl.onGone = onGone
	cl.mu.Unlock()
	return cl.cn.WriteFrame(AppendSubscribe(nil, since))
}

// Do sends one batch and waits for its reply: one Result per Request, in
// order. Concurrent Do calls pipeline on the connection.
func (cl *Client) Do(reqs []Request) ([]Result, error) {
	cl.mu.Lock()
	if cl.err != nil {
		err := cl.err
		cl.mu.Unlock()
		return nil, err
	}
	cl.nextID++
	id := cl.nextID
	ch := make(chan []Result, 1)
	cl.inflight[id] = ch
	cl.mu.Unlock()

	p, err := AppendBatch(nil, id, reqs)
	if err == nil {
		err = cl.cn.WriteFrame(p)
	}
	if err != nil {
		cl.mu.Lock()
		delete(cl.inflight, id)
		cl.mu.Unlock()
		return nil, err
	}
	select {
	case res := <-ch:
		return res, nil
	case <-cl.readerDone:
		// The reader may have delivered the reply right before dying.
		select {
		case res := <-ch:
			return res, nil
		default:
		}
		cl.mu.Lock()
		err := cl.err
		cl.mu.Unlock()
		return nil, err
	}
}

// Close tears the connection down; in-flight Do calls fail with the
// reader's error.
func (cl *Client) Close() error {
	err := cl.cn.Close()
	<-cl.readerDone
	return err
}

func (cl *Client) readLoop() {
	var err error
	for {
		var p []byte
		p, err = cl.cn.ReadFrame()
		if err != nil {
			break
		}
		if len(p) == 0 {
			err = errors.New("wire: empty frame")
			break
		}
		switch p[0] {
		case MsgBatchReply:
			var id uint64
			var results []Result
			if id, results, err = DecodeBatchReply(p); err == nil {
				cl.mu.Lock()
				ch, ok := cl.inflight[id]
				delete(cl.inflight, id)
				cl.mu.Unlock()
				if ok {
					ch <- results
				}
			}
		case MsgEvents:
			var next uint64
			var evs []Event
			if next, evs, err = DecodeEvents(p); err == nil {
				cl.mu.Lock()
				fn := cl.onEvents
				cl.mu.Unlock()
				if fn != nil {
					fn(next, evs)
				}
			}
		case MsgEventsGone:
			var oldest uint64
			if oldest, err = DecodeEventsGone(p); err == nil {
				cl.mu.Lock()
				fn := cl.onGone
				cl.mu.Unlock()
				if fn != nil {
					fn(oldest)
				}
			}
		case MsgError:
			err = DecodeError(p)
		default:
			err = errors.New("wire: unexpected message from server")
		}
		if err != nil {
			break
		}
	}
	cl.mu.Lock()
	if cl.err == nil {
		if err == nil {
			err = ErrClosed
		}
		cl.err = err
	}
	cl.mu.Unlock()
	cl.cn.Close()
	close(cl.readerDone)
}
