// Client side of the wire protocol: a connection with pipelined batch
// RPCs and an optional event subscription, demultiplexed by a single
// reader goroutine. Used by cmd/ftoa-loadgen and the serve-layer tests.
// Client is one connection and dies with it; Retrier (retry.go) wraps it
// with reconnection, resend and a circuit breaker.
package wire

import (
	"errors"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is returned by Do after Close (or after the connection died).
var ErrClosed = errors.New("wire: client closed")

// ErrTimeout is returned by Do when the per-request deadline (see
// SetRequestTimeout) passes before the reply arrives. The batch may
// still execute on the server; the connection should be dropped and the
// batch re-sent with the same seqs, which the server dedups.
var ErrTimeout = errors.New("wire: request deadline exceeded")

// EventHandler consumes one pushed Events frame: the decoded batch plus
// the cursor the stream resumes at. Called from the client's reader
// goroutine — do not block for long or call back into Do.
type EventHandler func(next uint64, evs []Event)

// GoneHandler is called when the server reports the subscription fell
// behind retention: oldest is the cursor the stream restarts from.
type GoneHandler func(oldest uint64)

// Client is one wire connection. Do is safe for concurrent use and
// pipelines: many batches may be in flight, correlated by id.
type Client struct {
	cn  *Conn
	ack HelloAck
	id  uint64

	// seq feeds the idempotency tokens Do assigns to effectful requests
	// whose Seq is zero. It only grows, even across errors, so a token
	// is never reused within this client id.
	seq atomic.Uint64

	// timeout, when positive, bounds each Do from send to reply.
	timeout atomic.Int64

	mu       sync.Mutex
	inflight map[uint64]chan []Result
	nextID   uint64
	err      error // set once the reader dies; sticky

	onEvents EventHandler
	onGone   GoneHandler

	readerDone chan struct{}
}

// RandomClientID returns a nonzero id suitable for Hello.
func RandomClientID() uint64 { return rand.Uint64() | 1 }

// Dial connects, handshakes under a fresh random client id, and starts
// the reader.
func Dial(addr string) (*Client, error) { return DialID(addr, RandomClientID()) }

// DialID is Dial with a caller-chosen client id (stable across
// reconnects, so the server's dedup window survives them).
func DialID(addr string, clientID uint64) (*Client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClientID(c, clientID)
}

// NewClient handshakes over an established stream under a fresh random
// client id and starts the reader. On error the stream is closed.
func NewClient(c net.Conn) (*Client, error) { return NewClientID(c, RandomClientID()) }

// NewClientID is NewClient with a caller-chosen client id.
func NewClientID(c net.Conn, clientID uint64) (*Client, error) {
	cn := NewConn(c)
	ack, err := ClientHandshake(cn, clientID)
	if err != nil {
		cn.Close()
		return nil, err
	}
	cl := &Client{
		cn:         cn,
		ack:        ack,
		id:         clientID,
		inflight:   make(map[uint64]chan []Result),
		readerDone: make(chan struct{}),
	}
	go cl.readLoop()
	return cl, nil
}

// Hello returns the server's handshake answer (shard count, clock).
func (cl *Client) Hello() HelloAck { return cl.ack }

// ClientID returns the id this connection handshook under.
func (cl *Client) ClientID() uint64 { return cl.id }

// SetRequestTimeout bounds every subsequent Do from send to reply; zero
// (the default) waits forever. A timed-out batch may still execute —
// drop the connection and re-send with the same seqs to resolve the
// ambiguity through the server's dedup window.
func (cl *Client) SetRequestTimeout(d time.Duration) { cl.timeout.Store(int64(d)) }

// SetSeq positions the idempotency counter so the next auto-assigned
// token is seq+1. A Retrier carrying its counter across reconnects uses
// this to keep tokens monotone within the client id.
func (cl *Client) SetSeq(seq uint64) { cl.seq.Store(seq) }

// Seq returns the last assigned idempotency token.
func (cl *Client) Seq() uint64 { return cl.seq.Load() }

// Subscribe asks for event push starting at since (SinceNow for the
// stream head). Handlers run on the reader goroutine. Call at most once,
// before the events of interest are produced.
func (cl *Client) Subscribe(since uint64, onEvents EventHandler, onGone GoneHandler) error {
	cl.mu.Lock()
	cl.onEvents = onEvents
	cl.onGone = onGone
	cl.mu.Unlock()
	return cl.cn.WriteFrame(AppendSubscribe(nil, since))
}

// Do sends one batch and waits for its reply: one Result per Request, in
// order. Concurrent Do calls pipeline on the connection. Effectful
// requests with Seq 0 are assigned the next idempotency token in place —
// re-sending the same slice (same seqs) after a reconnect is therefore
// safe: the server replays, never re-applies.
func (cl *Client) Do(reqs []Request) ([]Result, error) {
	for i := range reqs {
		if reqs[i].Seq == 0 && Effectful(reqs[i].Kind) {
			reqs[i].Seq = cl.seq.Add(1)
		}
	}
	cl.mu.Lock()
	if cl.err != nil {
		err := cl.err
		cl.mu.Unlock()
		return nil, err
	}
	cl.nextID++
	id := cl.nextID
	ch := make(chan []Result, 1)
	cl.inflight[id] = ch
	cl.mu.Unlock()

	p, err := AppendBatch(nil, id, reqs)
	if err == nil {
		err = cl.cn.WriteFrame(p)
	}
	if err != nil {
		cl.mu.Lock()
		delete(cl.inflight, id)
		cl.mu.Unlock()
		return nil, err
	}
	var timeoutC <-chan time.Time
	if d := time.Duration(cl.timeout.Load()); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		timeoutC = t.C
	}
	select {
	case res := <-ch:
		return res, nil
	case <-timeoutC:
		cl.mu.Lock()
		delete(cl.inflight, id)
		cl.mu.Unlock()
		// A reply racing the delete may already be buffered; prefer it.
		select {
		case res := <-ch:
			return res, nil
		default:
		}
		return nil, ErrTimeout
	case <-cl.readerDone:
		// The reader may have delivered the reply right before dying.
		select {
		case res := <-ch:
			return res, nil
		default:
		}
		cl.mu.Lock()
		err := cl.err
		cl.mu.Unlock()
		return nil, err
	}
}

// Err returns the sticky error the reader died with, or nil while the
// connection is alive.
func (cl *Client) Err() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.err
}

// Done is closed when the reader goroutine exits (the connection is
// dead); Err then reports why.
func (cl *Client) Done() <-chan struct{} { return cl.readerDone }

// Close tears the connection down; in-flight Do calls fail with the
// reader's error.
func (cl *Client) Close() error {
	err := cl.cn.Close()
	<-cl.readerDone
	return err
}

func (cl *Client) readLoop() {
	var err error
	for {
		var p []byte
		p, err = cl.cn.ReadFrame()
		if err != nil {
			break
		}
		if len(p) == 0 {
			err = errors.New("wire: empty frame")
			break
		}
		switch p[0] {
		case MsgBatchReply:
			var id uint64
			var results []Result
			if id, results, err = DecodeBatchReply(p); err == nil {
				cl.mu.Lock()
				ch, ok := cl.inflight[id]
				delete(cl.inflight, id)
				cl.mu.Unlock()
				if ok {
					ch <- results
				}
			}
		case MsgEvents:
			var next uint64
			var evs []Event
			if next, evs, err = DecodeEvents(p); err == nil {
				cl.mu.Lock()
				fn := cl.onEvents
				cl.mu.Unlock()
				if fn != nil {
					fn(next, evs)
				}
			}
		case MsgEventsGone:
			var oldest uint64
			if oldest, err = DecodeEventsGone(p); err == nil {
				cl.mu.Lock()
				fn := cl.onGone
				cl.mu.Unlock()
				if fn != nil {
					fn(oldest)
				}
			}
		case MsgError:
			err = DecodeError(p)
		default:
			err = errors.New("wire: unexpected message from server")
		}
		if err != nil {
			break
		}
	}
	cl.mu.Lock()
	if cl.err == nil {
		if err == nil {
			err = ErrClosed
		}
		cl.err = err
	}
	cl.mu.Unlock()
	cl.cn.Close()
	close(cl.readerDone)
}
