package wire

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// handshake runs the server side of a pipe's handshake or fails the test.
func handshake(t *testing.T, sc *Conn) {
	t.Helper()
	if _, err := ServerHandshake(sc, 1, 0); err != nil {
		t.Errorf("server handshake: %v", err)
	}
}

// TestClientSeqAssignment: Do assigns monotone idempotency tokens to
// effectful requests in place and leaves advances (non-effectful)
// unassigned, so the server never dedups a clock nudge.
func TestClientSeqAssignment(t *testing.T) {
	server, client := net.Pipe()
	sc := NewConn(server)
	seqs := make(chan []uint64, 2)
	go func() {
		handshake(t, sc)
		for i := 0; i < 2; i++ {
			p, err := sc.ReadFrame()
			if err != nil {
				return
			}
			id, reqs, err := DecodeBatch(p, nil)
			if err != nil {
				t.Error(err)
				return
			}
			got := make([]uint64, len(reqs))
			results := make([]Result, len(reqs))
			for j, rq := range reqs {
				got[j] = rq.Seq
				results[j] = Result{Kind: rq.Kind, Status: StatusOK}
			}
			seqs <- got
			sc.WriteFrame(AppendBatchReply(nil, id, results))
		}
	}()
	cl, err := NewClient(client)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Do([]Request{
		{Kind: ReqAddWorker, X: 1, Window: 1},
		{Kind: ReqAdvance},
		{Kind: ReqAddTask, X: 2, Window: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if got := <-seqs; got[0] != 1 || got[1] != 0 || got[2] != 2 {
		t.Fatalf("first batch seqs = %v, want [1 0 2]", got)
	}
	// A pre-assigned seq (a resend) is kept, not reassigned.
	if _, err := cl.Do([]Request{{Kind: ReqWithdrawWorker, Seq: 2}}); err != nil {
		t.Fatal(err)
	}
	if got := <-seqs; got[0] != 2 {
		t.Fatalf("resend seq = %v, want the caller's 2", got)
	}
	server.Close()
}

// TestClientMidFrameReset: the peer dying mid-frame (header promised
// more bytes than ever arrive) surfaces as an error on the pending Do,
// turns sticky, and fails every later Do immediately.
func TestClientMidFrameReset(t *testing.T) {
	server, client := net.Pipe()
	sc := NewConn(server)
	go func() {
		handshake(t, sc)
		if _, err := sc.ReadFrame(); err != nil { // the batch
			return
		}
		// A frame header promising 100 payload bytes, then silence: the
		// connection dies mid-frame.
		hdr := make([]byte, 8)
		binary.LittleEndian.PutUint32(hdr[0:4], 100)
		server.Write(hdr)
		server.Close()
	}()
	cl, err := NewClient(client)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Do([]Request{{Kind: ReqAddWorker, X: 1, Window: 1}}); err == nil {
		t.Fatal("Do survived a mid-frame connection death")
	}
	if cl.Err() == nil {
		t.Fatal("reader death not sticky")
	}
	// The next Do must fail fast with the same sticky error, not hang.
	if _, err := cl.Do([]Request{{Kind: ReqAdvance}}); !errors.Is(err, cl.Err()) {
		t.Fatalf("Do after death = %v, want sticky %v", err, cl.Err())
	}
}

// TestClientStickyErrorFansOut: when the connection dies, every pending
// Do — however many are pipelined — gets the error; none hangs.
func TestClientStickyErrorFansOut(t *testing.T) {
	server, client := net.Pipe()
	sc := NewConn(server)
	const pending = 8
	batches := make(chan struct{}, pending)
	go func() {
		handshake(t, sc)
		for i := 0; i < pending; i++ {
			if _, err := sc.ReadFrame(); err != nil {
				return
			}
			batches <- struct{}{}
		}
		// All in flight, none answered: hang up.
		server.Close()
	}()
	cl, err := NewClient(client)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	errs := make(chan error, pending)
	for i := 0; i < pending; i++ {
		go func() {
			_, err := cl.Do([]Request{{Kind: ReqAdvance}})
			errs <- err
		}()
	}
	for i := 0; i < pending; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Fatal("a pending Do returned results from a dead connection")
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d of %d pending Do calls unblocked", i, pending)
		}
	}
}

// TestClientRequestTimeout: a server that swallows the batch trips the
// per-request deadline; the Do returns ErrTimeout instead of hanging.
func TestClientRequestTimeout(t *testing.T) {
	server, client := net.Pipe()
	sc := NewConn(server)
	go func() {
		handshake(t, sc)
		sc.ReadFrame() // swallow the batch, never reply
	}()
	cl, err := NewClient(client)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { cl.Close(); server.Close() }()
	cl.SetRequestTimeout(50 * time.Millisecond)
	if _, err := cl.Do([]Request{{Kind: ReqAdvance}}); !errors.Is(err, ErrTimeout) {
		t.Fatalf("Do against a silent server = %v, want ErrTimeout", err)
	}
}

// TestClientDemuxCloseRace: concurrent Do callers racing Close neither
// deadlock nor panic — each call either gets its reply or an error.
// Primarily a -race exercise of the reader/inflight handoff.
func TestClientDemuxCloseRace(t *testing.T) {
	server, client := net.Pipe()
	sc := NewConn(server)
	go func() {
		handshake(t, sc)
		for {
			p, err := sc.ReadFrame()
			if err != nil || len(p) == 0 || p[0] != MsgBatch {
				return
			}
			id, reqs, err := DecodeBatch(p, nil)
			if err != nil {
				return
			}
			results := make([]Result, len(reqs))
			for i := range results {
				results[i] = Result{Kind: reqs[i].Kind, Status: StatusOK}
			}
			if sc.WriteFrame(AppendBatchReply(nil, id, results)) != nil {
				return
			}
		}
	}()
	cl, err := NewClient(client)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				res, err := cl.Do([]Request{{Kind: ReqAdvance}})
				if err != nil {
					return // the close won the race; fine
				}
				if len(res) != 1 || res[0].Status != StatusOK {
					t.Errorf("demuxed reply = %+v", res)
					return
				}
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	cl.Close()
	server.Close()
	wg.Wait()
}
