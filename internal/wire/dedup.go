// Server-side idempotency state: a bounded per-client window of
// completed (seq -> result) records. At-least-once delivery (a resilient
// client resends any batch whose ack it lost) becomes exactly-once
// effects: a re-sent op whose seq the window remembers is answered with
// the original receipt instead of being re-applied.
package wire

import (
	"errors"
	"sync"
)

// DedupState classifies a seq lookup against a client's window.
type DedupState int

const (
	// DedupNew: the seq has not been seen; execute and Record it.
	DedupNew DedupState = iota
	// DedupHit: the seq completed earlier; replay the recorded result.
	DedupHit
	// DedupOverrun: the seq is older than the window retains, so the
	// server cannot tell whether it executed. Refuse with StatusErr —
	// never guess at an effectful op.
	DedupOverrun
	// DedupInvalid: seq 0, the reserved "unassigned" sentinel.
	DedupInvalid
)

// ErrClientTableFull reports that the dedup table is at its client
// bound and no client was idle long enough to evict.
var ErrClientTableFull = errors.New("wire: client table full")

// DedupTable holds one ClientWindow per client id, bounded in both
// directions: at most maxClients windows, each remembering at most
// window completed seqs. Windows are created on first use and evicted
// least-recently-used when the table is full.
type DedupTable struct {
	window     int
	maxClients int

	mu      sync.Mutex
	clients map[uint64]*ClientWindow
	// tick is a logical LRU clock: bumped on every Acquire, stamped
	// into the window, so eviction needs no wall time.
	tick uint64
}

// Defaults for NewDedupTable's bounds when zero.
const (
	DefaultDedupWindow = 8192
	DefaultDedupCap    = 1024
)

// NewDedupTable builds a table retaining `window` completed seqs per
// client for up to maxClients clients (zeros pick the defaults).
func NewDedupTable(window, maxClients int) *DedupTable {
	if window <= 0 {
		window = DefaultDedupWindow
	}
	if maxClients <= 0 {
		maxClients = DefaultDedupCap
	}
	return &DedupTable{
		window:     window,
		maxClients: maxClients,
		clients:    make(map[uint64]*ClientWindow),
	}
}

// Acquire returns the window for clientID, creating it on first use.
// When the table is at its client bound, the least-recently-acquired
// window is evicted to make room — unless it is still in use (a batch
// is being processed under its lock), in which case Acquire refuses
// with ErrClientTableFull rather than break an active client's
// exactly-once guarantee.
func (t *DedupTable) Acquire(clientID uint64) (*ClientWindow, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tick++
	if w, ok := t.clients[clientID]; ok {
		w.lastUsed = t.tick
		return w, nil
	}
	if len(t.clients) >= t.maxClients {
		var victim uint64
		var victimW *ClientWindow
		for id, w := range t.clients {
			if w.inUse() {
				continue
			}
			if victimW == nil || w.lastUsed < victimW.lastUsed {
				victim, victimW = id, w
			}
		}
		if victimW == nil {
			return nil, ErrClientTableFull
		}
		delete(t.clients, victim)
	}
	w := &ClientWindow{window: t.window, recs: make(map[uint64]Result), lastUsed: t.tick}
	t.clients[clientID] = w
	return w, nil
}

// Clients reports the number of tracked client windows.
func (t *DedupTable) Clients() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.clients)
}

// ClientWindow is one client's dedup state. Lock it around a whole
// batch: the lock both guards the window and serializes batches for the
// client across connections, so a resend racing its original (the
// client reconnected while the old connection's handler was still
// mid-batch) observes the original's recorded results instead of
// re-executing.
type ClientWindow struct {
	mu       sync.Mutex
	window   int
	maxSeq   uint64 // highest seq ever recorded
	recs     map[uint64]Result
	lastUsed uint64 // DedupTable LRU stamp, guarded by the table lock
}

// Lock serializes the client's batch processing and must be held for
// Lookup/Record.
func (w *ClientWindow) Lock() { w.mu.Lock() }

// Unlock releases the window.
func (w *ClientWindow) Unlock() { w.mu.Unlock() }

// inUse reports whether a batch currently holds the window; called
// under the table lock only (best-effort: a racing Lock is caught by
// the next eviction attempt).
func (w *ClientWindow) inUse() bool {
	if !w.mu.TryLock() {
		return true
	}
	w.mu.Unlock()
	return false
}

// Lookup classifies seq. Callers must hold Lock.
func (w *ClientWindow) Lookup(seq uint64) (Result, DedupState) {
	if seq == 0 {
		return Result{}, DedupInvalid
	}
	if r, ok := w.recs[seq]; ok {
		return r, DedupHit
	}
	if w.maxSeq >= uint64(w.window) && seq <= w.maxSeq-uint64(w.window) {
		return Result{}, DedupOverrun
	}
	return Result{}, DedupNew
}

// Record stores a completed op's terminal result (StatusOK or
// StatusErr — BUSY is retryable and must not be recorded) and slides
// the window, forgetting seqs older than maxSeq-window. Callers must
// hold Lock.
func (w *ClientWindow) Record(seq uint64, res Result) {
	if seq == 0 || res.Status == StatusBusy {
		return
	}
	w.recs[seq] = res
	if seq > w.maxSeq {
		w.maxSeq = seq
	}
	// Seqs are client-monotone, so the stale tail is contiguous; still,
	// sweep by predicate so a client that skips seqs cannot leak.
	if len(w.recs) > w.window {
		floor := w.maxSeq - uint64(w.window)
		for s := range w.recs {
			if s <= floor {
				delete(w.recs, s)
			}
		}
	}
}
