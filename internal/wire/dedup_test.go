package wire

import (
	"errors"
	"testing"
)

// TestClientWindowLifecycle: the four lookup states, receipt replay, and
// the rule that BUSY (retryable) is never recorded.
func TestClientWindowLifecycle(t *testing.T) {
	tb := NewDedupTable(4, 2)
	w, err := tb.Acquire(7)
	if err != nil {
		t.Fatal(err)
	}
	w.Lock()
	defer w.Unlock()

	if _, st := w.Lookup(0); st != DedupInvalid {
		t.Fatalf("seq 0 state = %v, want DedupInvalid", st)
	}
	if _, st := w.Lookup(1); st != DedupNew {
		t.Fatalf("fresh seq state = %v, want DedupNew", st)
	}
	w.Record(1, Result{Status: StatusOK, Local: 11})
	rec, st := w.Lookup(1)
	if st != DedupHit || rec.Local != 11 {
		t.Fatalf("recorded seq = %+v/%v, want replayed receipt", rec, st)
	}
	// An error outcome is terminal too: replay it, don't re-execute.
	w.Record(2, Result{Status: StatusErr, Msg: "bad window"})
	if rec, st := w.Lookup(2); st != DedupHit || rec.Msg != "bad window" {
		t.Fatalf("recorded error = %+v/%v, want replayed", rec, st)
	}
	// BUSY is backpressure, not an outcome: a retry with the same seq must
	// execute fresh.
	w.Record(3, Result{Status: StatusBusy, RetryAfter: 0.1})
	if _, st := w.Lookup(3); st != DedupNew {
		t.Fatalf("BUSY seq state = %v, want DedupNew (never recorded)", st)
	}
	// Seq 0 is the unassigned sentinel and must never enter the window.
	w.Record(0, Result{Status: StatusOK})
	if _, st := w.Lookup(0); st != DedupInvalid {
		t.Fatalf("seq 0 after Record = %v, want DedupInvalid", st)
	}
}

// TestClientWindowSlide: recording past the bound forgets the oldest
// seqs, and a forgotten seq is refused (DedupOverrun) — its outcome is
// unknowable, so the server must never guess.
func TestClientWindowSlide(t *testing.T) {
	tb := NewDedupTable(4, 1)
	w, err := tb.Acquire(1)
	if err != nil {
		t.Fatal(err)
	}
	w.Lock()
	defer w.Unlock()
	for seq := uint64(1); seq <= 10; seq++ {
		w.Record(seq, Result{Status: StatusOK, Local: uint32(seq)})
	}
	// window=4, maxSeq=10: seqs <= 6 are forgotten, 7..10 replayable.
	for seq := uint64(1); seq <= 6; seq++ {
		if _, st := w.Lookup(seq); st != DedupOverrun {
			t.Fatalf("seq %d state = %v, want DedupOverrun", seq, st)
		}
	}
	for seq := uint64(7); seq <= 10; seq++ {
		if rec, st := w.Lookup(seq); st != DedupHit || rec.Local != uint32(seq) {
			t.Fatalf("seq %d = %+v/%v, want retained hit", seq, rec, st)
		}
	}
	if _, st := w.Lookup(11); st != DedupNew {
		t.Fatalf("next seq state = %v, want DedupNew", st)
	}
}

// TestDedupTableLRUEviction: at the client bound the least-recently
// acquired window is evicted, and a returning evicted client starts with
// an empty window (its old receipts are gone, which Lookup reports as
// DedupNew — the op re-executes, the accepted cost of bounded memory).
func TestDedupTableLRUEviction(t *testing.T) {
	tb := NewDedupTable(8, 2)
	w1, _ := tb.Acquire(1)
	w1.Lock()
	w1.Record(5, Result{Status: StatusOK})
	w1.Unlock()
	if w2, _ := tb.Acquire(2); w2 == nil {
		t.Fatal("second client refused below the bound")
	}
	// Client 1 is now LRU; admitting client 3 evicts it.
	if _, err := tb.Acquire(3); err != nil {
		t.Fatal(err)
	}
	if n := tb.Clients(); n != 2 {
		t.Fatalf("clients = %d, want 2 after eviction", n)
	}
	w1b, err := tb.Acquire(1)
	if err != nil {
		t.Fatal(err)
	}
	if w1b == w1 {
		t.Fatal("evicted client got its old window back")
	}
	w1b.Lock()
	if _, st := w1b.Lookup(5); st != DedupNew {
		t.Fatalf("returning client's old seq = %v, want DedupNew (window was evicted)", st)
	}
	w1b.Unlock()

	// Re-acquiring a live client returns the same window, receipts intact.
	wA, _ := tb.Acquire(42)
	wA.Lock()
	wA.Record(1, Result{Status: StatusOK, Local: 99})
	wA.Unlock()
	wB, _ := tb.Acquire(42)
	if wA != wB {
		t.Fatal("re-acquire built a new window for a live client")
	}
}

// TestDedupTableFullWhenAllBusy: a window mid-batch (lock held) is never
// evicted; when every window is busy Acquire refuses instead of breaking
// an active client's exactly-once guarantee.
func TestDedupTableFullWhenAllBusy(t *testing.T) {
	tb := NewDedupTable(8, 1)
	w, err := tb.Acquire(1)
	if err != nil {
		t.Fatal(err)
	}
	w.Lock()
	if _, err := tb.Acquire(2); !errors.Is(err, ErrClientTableFull) {
		t.Fatalf("acquire with all windows busy = %v, want ErrClientTableFull", err)
	}
	w.Unlock()
	if _, err := tb.Acquire(2); err != nil {
		t.Fatalf("acquire after batch finished: %v", err)
	}
}
