// Retrier wraps Client with the at-least-once half of the exactly-once
// contract: automatic reconnection under capped exponential backoff with
// full jitter, resubmission of batches whose ack was lost (safe because
// every effectful request carries an idempotency token the server
// dedups), resumable event subscription from the last delivered cursor,
// and a circuit breaker with half-open probing.
package wire

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrCircuitOpen is returned by Do when the circuit breaker is open and
// nothing of the batch has been sent yet — failing fast is safe exactly
// until the first send, after which Do must block and resolve the batch
// through the dedup window.
var ErrCircuitOpen = errors.New("wire: circuit open")

// ErrRetrierClosed is returned by Do after Close.
var ErrRetrierClosed = errors.New("wire: retrier closed")

// RetryConfig configures a Retrier. Zero values pick the defaults noted
// on each field.
type RetryConfig struct {
	// Addr is dialed (tcp) unless Dial is set.
	Addr string
	// Dial overrides the transport, e.g. to route through a chaos proxy
	// or an in-process pipe.
	Dial func() (net.Conn, error)
	// ClientID is the stable idempotency identity presented on every
	// handshake; 0 picks a random one at construction.
	ClientID uint64
	// RequestTimeout bounds each attempt of a batch from send to reply
	// (0: 10s). On expiry the connection is dropped and the batch
	// re-sent on the next one.
	RequestTimeout time.Duration
	// BackoffBase/BackoffCap bound the reconnect delay: attempt n sleeps
	// uniform(0, min(cap, base<<n)) — full jitter (0: 50ms / 5s).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// BreakerThreshold consecutive connect failures open the breaker
	// (0: 8; negative: never open).
	BreakerThreshold int
	// BreakerCooldown is the first open interval; each failed half-open
	// probe doubles it, capped at 16x (0: 1s).
	BreakerCooldown time.Duration
	// Subscribe, when true, maintains an event subscription across
	// reconnects, resuming from the cursor after the last delivered
	// frame. SubscribeSince seeds the cursor (use SinceNow for the
	// stream head at first connect).
	Subscribe      bool
	SubscribeSince uint64
	// OnEvents/OnGone receive the merged stream, same contract as
	// Client.Subscribe. Frames are never delivered twice unless the
	// server reports loss via OnGone first.
	OnEvents EventHandler
	OnGone   GoneHandler
}

func (c *RetryConfig) withDefaults() RetryConfig {
	d := *c
	if d.Dial == nil {
		addr := d.Addr
		d.Dial = func() (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if d.ClientID == 0 {
		d.ClientID = RandomClientID()
	}
	if d.RequestTimeout == 0 {
		d.RequestTimeout = 10 * time.Second
	}
	if d.BackoffBase <= 0 {
		d.BackoffBase = 50 * time.Millisecond
	}
	if d.BackoffCap <= 0 {
		d.BackoffCap = 5 * time.Second
	}
	if d.BreakerThreshold == 0 {
		d.BreakerThreshold = 8
	}
	if d.BreakerCooldown <= 0 {
		d.BreakerCooldown = time.Second
	}
	return d
}

// Retrier is a self-healing wire client: Do blocks through connection
// loss, re-sending the batch with stable idempotency tokens until the
// server acknowledges it exactly once. Safe for concurrent use.
type Retrier struct {
	cfg RetryConfig
	seq atomic.Uint64 // idempotency tokens, shared across connections

	mu      sync.Mutex
	cur     *Client
	gen     uint64        // bumped on every successful connect
	ready   chan struct{} // closed while cur != nil; replaced on loss
	closed  bool
	fatal   error     // handshake refusal: retrying cannot help
	openTil time.Time // breaker: fail fast until then

	done chan struct{} // closed by Close

	reconnects atomic.Uint64 // successful connects after the first
	resends    atomic.Uint64 // batch attempts beyond the first send

	cursor     uint64 // next event cursor, guarded by mu
	haveCursor bool
}

// NewRetrier starts the reconnect loop and returns immediately; the
// first connection is established in the background. Use WaitConnect to
// block until the server is reachable.
func NewRetrier(cfg RetryConfig) *Retrier {
	r := &Retrier{
		cfg:   cfg.withDefaults(),
		ready: make(chan struct{}),
		done:  make(chan struct{}),
	}
	go r.run()
	return r
}

// ClientID returns the stable identity every handshake presents.
func (r *Retrier) ClientID() uint64 { return r.cfg.ClientID }

// Reconnects counts successful connections beyond the first.
func (r *Retrier) Reconnects() uint64 { return r.reconnects.Load() }

// Resends counts batch send attempts beyond each batch's first.
func (r *Retrier) Resends() uint64 { return r.resends.Load() }

// WaitConnect blocks until the first connection is up and returns its
// HelloAck, or gives up after patience.
func (r *Retrier) WaitConnect(patience time.Duration) (HelloAck, error) {
	deadline := time.Now().Add(patience)
	for {
		r.mu.Lock()
		cl, fatal, closed := r.cur, r.fatal, r.closed
		ch := r.ready
		r.mu.Unlock()
		switch {
		case cl != nil:
			return cl.Hello(), nil
		case fatal != nil:
			return HelloAck{}, fatal
		case closed:
			return HelloAck{}, ErrRetrierClosed
		}
		wait := time.Until(deadline)
		if wait <= 0 {
			return HelloAck{}, fmt.Errorf("wire: no connection within %v", patience)
		}
		t := time.NewTimer(wait)
		select {
		case <-ch:
		case <-r.done:
		case <-t.C:
		}
		t.Stop()
	}
}

// Do sends one batch and blocks until the server acknowledges it, across
// however many reconnects that takes. Effectful requests with Seq 0 get
// tokens assigned in place before the first send and keep them on every
// resend, so the reply is the original receipt even when an earlier
// attempt executed. Fails fast with ErrCircuitOpen only while nothing
// has been sent; fails with the handshake refusal if the server rejects
// this client outright.
func (r *Retrier) Do(reqs []Request) ([]Result, error) {
	for i := range reqs {
		if reqs[i].Seq == 0 && Effectful(reqs[i].Kind) {
			reqs[i].Seq = r.seq.Add(1)
		}
	}
	sent := false
	var lastGen uint64
	for {
		cl, gen, err := r.await(lastGen, !sent)
		if err != nil {
			return nil, err
		}
		lastGen = gen
		if sent {
			r.resends.Add(1)
		}
		sent = true
		res, err := cl.Do(reqs)
		if err == nil {
			return res, nil
		}
		// Ambiguous outcome (timeout, connection loss): drop the
		// connection and retry the same tokens on the next one.
		cl.Close()
	}
}

// await blocks until a connection newer than minGen is up. With failFast
// it instead returns ErrCircuitOpen whenever the breaker is open.
func (r *Retrier) await(minGen uint64, failFast bool) (*Client, uint64, error) {
	for {
		r.mu.Lock()
		switch {
		case r.closed:
			r.mu.Unlock()
			return nil, 0, ErrRetrierClosed
		case r.fatal != nil:
			err := r.fatal
			r.mu.Unlock()
			return nil, 0, err
		case r.cur != nil && r.gen > minGen:
			cl, gen := r.cur, r.gen
			r.mu.Unlock()
			return cl, gen, nil
		case failFast && time.Now().Before(r.openTil):
			r.mu.Unlock()
			return nil, 0, ErrCircuitOpen
		}
		ch := r.ready
		r.mu.Unlock()
		t := time.NewTimer(50 * time.Millisecond) // re-check breaker state
		select {
		case <-ch:
		case <-r.done:
		case <-t.C:
		}
		t.Stop()
	}
}

// Close stops reconnecting and tears down the current connection.
func (r *Retrier) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	cl := r.cur
	r.mu.Unlock()
	close(r.done)
	if cl != nil {
		cl.Close()
	}
}

// run owns the connection lifecycle: connect (with backoff, breaker
// accounting and half-open probing), resubscribe, publish, wait for
// death, repeat.
func (r *Retrier) run() {
	fails := 0
	cooldown := r.cfg.BreakerCooldown
	first := true
	for {
		select {
		case <-r.done:
			return
		default:
		}
		cl, err := r.connect()
		if err != nil {
			var remote *RemoteError
			if errors.As(err, &remote) {
				// The server refused the handshake (version mismatch,
				// zero client id): retrying cannot help.
				r.mu.Lock()
				r.fatal = err
				close(r.ready)
				r.ready = make(chan struct{})
				r.mu.Unlock()
				return
			}
			fails++
			if r.cfg.BreakerThreshold > 0 && fails >= r.cfg.BreakerThreshold {
				// Open (or re-open after a failed half-open probe): fail
				// fast and back off harder each time, capped at 16x.
				r.mu.Lock()
				r.openTil = time.Now().Add(cooldown)
				r.mu.Unlock()
				r.sleep(cooldown)
				if cooldown < r.cfg.BreakerCooldown<<4 {
					cooldown <<= 1
				}
				continue
			}
			r.sleep(backoff(r.cfg.BackoffBase, r.cfg.BackoffCap, fails))
			continue
		}
		fails = 0
		cooldown = r.cfg.BreakerCooldown
		r.mu.Lock()
		r.openTil = time.Time{}
		if r.closed {
			r.mu.Unlock()
			cl.Close()
			return
		}
		r.cur = cl
		r.gen++
		close(r.ready)
		r.mu.Unlock()
		if !first {
			r.reconnects.Add(1)
		}
		first = false

		select {
		case <-cl.Done():
		case <-r.done:
			cl.Close()
			return
		}
		r.mu.Lock()
		r.cur = nil
		r.ready = make(chan struct{})
		r.mu.Unlock()
	}
}

// connect dials, handshakes, and (when configured) resubscribes from
// the last delivered cursor before the connection is published.
func (r *Retrier) connect() (*Client, error) {
	c, err := r.cfg.Dial()
	if err != nil {
		return nil, err
	}
	cl, err := NewClientID(c, r.cfg.ClientID)
	if err != nil {
		return nil, err
	}
	cl.SetRequestTimeout(r.cfg.RequestTimeout)
	if r.cfg.Subscribe {
		r.mu.Lock()
		since := r.cfg.SubscribeSince
		if r.haveCursor {
			since = r.cursor
		}
		r.mu.Unlock()
		err := cl.Subscribe(since,
			func(next uint64, evs []Event) {
				r.mu.Lock()
				r.cursor, r.haveCursor = next, true
				r.mu.Unlock()
				if r.cfg.OnEvents != nil {
					r.cfg.OnEvents(next, evs)
				}
			},
			func(oldest uint64) {
				r.mu.Lock()
				r.cursor, r.haveCursor = oldest, true
				r.mu.Unlock()
				if r.cfg.OnGone != nil {
					r.cfg.OnGone(oldest)
				}
			})
		if err != nil {
			cl.Close()
			return nil, err
		}
	}
	return cl, nil
}

// sleep waits d or until Close.
func (r *Retrier) sleep(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-r.done:
	}
}

// backoff returns attempt n's delay: uniform(0, min(cap, base<<n)) —
// "full jitter", which decorrelates a thundering herd best among the
// standard schedules.
func backoff(base, cap time.Duration, attempt int) time.Duration {
	if attempt > 20 {
		attempt = 20
	}
	ceil := base << attempt
	if ceil > cap || ceil <= 0 {
		ceil = cap
	}
	return time.Duration(rand.Int64N(int64(ceil) + 1))
}
