package wire

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// flakyServer is a TCP stub whose per-connection behavior is supplied by
// the test: handle receives the framed connection and its 0-based index.
func flakyServer(t *testing.T, handle func(cn *Conn, idx int)) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var idx atomic.Int64
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(i int) {
				defer c.Close()
				handle(NewConn(c), i)
			}(int(idx.Add(1) - 1))
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

// TestRetrierExactlyOnceAcrossDrop: the server applies a batch and dies
// before acking. The Retrier reconnects and re-sends the same seqs; the
// dedup window replays the original receipts, so the caller sees every
// effect exactly once.
func TestRetrierExactlyOnceAcrossDrop(t *testing.T) {
	table := NewDedupTable(0, 0)
	var applied sync.Map // seq -> *atomic.Int64 execution count
	addr, stop := flakyServer(t, func(cn *Conn, idx int) {
		clientID, err := ServerHandshake(cn, 1, 0)
		if err != nil {
			return
		}
		win, err := table.Acquire(clientID)
		if err != nil {
			return
		}
		for {
			p, err := cn.ReadFrame()
			if err != nil || len(p) == 0 || p[0] != MsgBatch {
				return
			}
			id, reqs, err := DecodeBatch(p, nil)
			if err != nil {
				return
			}
			results := make([]Result, len(reqs))
			win.Lock()
			for i, rq := range reqs {
				if rec, st := win.Lookup(rq.Seq); st == DedupHit {
					results[i] = rec
					continue
				}
				n, _ := applied.LoadOrStore(rq.Seq, new(atomic.Int64))
				n.(*atomic.Int64).Add(1)
				results[i] = Result{Kind: rq.Kind, Status: StatusOK, Local: uint32(rq.Seq)}
				win.Record(rq.Seq, results[i])
			}
			win.Unlock()
			if idx == 0 {
				return // applied, but the ack is lost with the connection
			}
			if cn.WriteFrame(AppendBatchReply(nil, id, results)) != nil {
				return
			}
		}
	})
	defer stop()

	r := NewRetrier(RetryConfig{
		Addr:             addr,
		BackoffBase:      time.Millisecond,
		BackoffCap:       10 * time.Millisecond,
		BreakerThreshold: -1,
	})
	defer r.Close()
	res, err := r.Do([]Request{
		{Kind: ReqAddWorker, X: 1, Window: 1},
		{Kind: ReqAddWorker, X: 2, Window: 1},
		{Kind: ReqAddTask, X: 3, Window: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, rs := range res {
		if rs.Status != StatusOK || rs.Local != uint32(i+1) {
			t.Fatalf("result %d = %+v, want the original receipt for seq %d", i, rs, i+1)
		}
	}
	applied.Range(func(seq, n any) bool {
		if c := n.(*atomic.Int64).Load(); c != 1 {
			t.Errorf("seq %v executed %d times, want exactly once", seq, c)
		}
		return true
	})
	if r.Reconnects() < 1 || r.Resends() < 1 {
		t.Fatalf("reconnects=%d resends=%d, want the drop to have forced both", r.Reconnects(), r.Resends())
	}
}

// TestRetrierFatalRefusal: a server that refuses the handshake with an
// Error frame stops the Retrier for good — WaitConnect and Do both
// surface the refusal instead of retrying forever.
func TestRetrierFatalRefusal(t *testing.T) {
	var dials atomic.Int64
	addr, stop := flakyServer(t, func(cn *Conn, idx int) {
		dials.Add(1)
		cn.ReadFrame() // the Hello
		cn.WriteError("protocol version mismatch")
	})
	defer stop()
	r := NewRetrier(RetryConfig{Addr: addr, BackoffBase: time.Millisecond})
	defer r.Close()
	var remote *RemoteError
	if _, err := r.WaitConnect(5 * time.Second); !errors.As(err, &remote) {
		t.Fatalf("WaitConnect = %v, want the server's refusal", err)
	}
	if _, err := r.Do([]Request{{Kind: ReqAdvance}}); !errors.As(err, &remote) {
		t.Fatalf("Do after refusal = %v, want the fatal error", err)
	}
	time.Sleep(50 * time.Millisecond)
	if n := dials.Load(); n != 1 {
		t.Fatalf("server saw %d handshakes after a fatal refusal, want 1", n)
	}
}

// TestRetrierBreakerHalfOpen: consecutive connect failures open the
// breaker (Do fails fast pre-send with ErrCircuitOpen); once the target
// heals, a half-open probe reconnects and Do succeeds again.
func TestRetrierBreakerHalfOpen(t *testing.T) {
	addr, stop := flakyServer(t, func(cn *Conn, idx int) {
		if _, err := ServerHandshake(cn, 1, 0); err != nil {
			return
		}
		for {
			p, err := cn.ReadFrame()
			if err != nil || len(p) == 0 || p[0] != MsgBatch {
				return
			}
			id, reqs, err := DecodeBatch(p, nil)
			if err != nil {
				return
			}
			results := make([]Result, len(reqs))
			for i := range results {
				results[i] = Result{Kind: reqs[i].Kind, Status: StatusOK}
			}
			if cn.WriteFrame(AppendBatchReply(nil, id, results)) != nil {
				return
			}
		}
	})
	defer stop()

	var healthy atomic.Bool
	r := NewRetrier(RetryConfig{
		Dial: func() (net.Conn, error) {
			if !healthy.Load() {
				return nil, errors.New("host unreachable")
			}
			return net.Dial("tcp", addr)
		},
		BackoffBase:      time.Millisecond,
		BackoffCap:       5 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  100 * time.Millisecond,
	})
	defer r.Close()

	// While the target is down the breaker opens; a Do that has sent
	// nothing yet must fail fast rather than queue behind a dead host.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := r.Do([]Request{{Kind: ReqAdvance}})
		if errors.Is(err, ErrCircuitOpen) {
			break
		}
		if err == nil {
			t.Fatal("Do succeeded against a dead dialer")
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never opened; last err %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Heal the target: the next half-open probe reconnects and requests
	// flow again, without any intervention from the caller.
	healthy.Store(true)
	for {
		res, err := r.Do([]Request{{Kind: ReqAdvance}})
		if err == nil && len(res) == 1 && res[0].Status == StatusOK {
			break
		}
		if !errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("Do during recovery = %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never recovered after the target healed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRetrierResumesSubscription: the subscription survives a dropped
// connection, resuming from the cursor after the last delivered frame —
// no event is delivered twice, none is skipped.
func TestRetrierResumesSubscription(t *testing.T) {
	sinces := make(chan uint64, 2)
	addr, stop := flakyServer(t, func(cn *Conn, idx int) {
		if _, err := ServerHandshake(cn, 1, 0); err != nil {
			return
		}
		p, err := cn.ReadFrame()
		if err != nil || len(p) == 0 || p[0] != MsgSubscribe {
			return
		}
		since, err := DecodeSubscribe(p)
		if err != nil {
			return
		}
		sinces <- since
		if idx == 0 {
			// Two events, then the connection dies.
			cn.WriteFrame(AppendEvents(nil, 3, []Event{
				{Seq: 1, Worker: 1, Task: -1},
				{Seq: 2, Worker: -1, Task: 1},
			}))
			return
		}
		// The resumed connection picks up exactly where the stream left off.
		cn.WriteFrame(AppendEvents(nil, 4, []Event{{Seq: 3, Worker: 2, Task: 2}}))
		// Stay alive so the client does not reconnect again.
		for {
			if _, err := cn.ReadFrame(); err != nil {
				return
			}
		}
	})
	defer stop()

	var mu sync.Mutex
	var seqs []uint64
	r := NewRetrier(RetryConfig{
		Addr:             addr,
		BackoffBase:      time.Millisecond,
		BackoffCap:       10 * time.Millisecond,
		BreakerThreshold: -1,
		Subscribe:        true,
		SubscribeSince:   0,
		OnEvents: func(_ uint64, evs []Event) {
			mu.Lock()
			for i := range evs {
				seqs = append(seqs, evs[i].Seq)
			}
			mu.Unlock()
		},
	})
	defer r.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := len(seqs)
		mu.Unlock()
		if n >= 3 {
			break
		}
		if time.Now().After(deadline) {
			mu.Lock()
			t.Fatalf("only %v delivered", seqs)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s0 := <-sinces; s0 != 0 {
		t.Fatalf("first subscribe since = %d, want the configured 0", s0)
	}
	if s1 := <-sinces; s1 != 3 {
		t.Fatalf("resumed subscribe since = %d, want the cursor 3", s1)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seqs) != 3 || seqs[0] != 1 || seqs[1] != 2 || seqs[2] != 3 {
		t.Fatalf("delivered seqs = %v, want [1 2 3] exactly once each", seqs)
	}
}
