// Package wire is the binary serving protocol of ftoa-serve: a compact,
// length-prefixed, CRC-framed message format for batched admission
// (AddWorker/AddTask), clock advance, receipt withdrawal, and lifecycle
// event push over a single TCP connection.
//
// # Framing
//
// Every message travels as one frame using the WAL codec's convention
// (package internal/shard/wal):
//
//	[u32 payload length][u32 CRC-32C of payload][payload]
//
// little-endian throughout. The payload's first byte is the message type.
// A frame that fails its length bound or CRC check is a protocol error:
// unlike the WAL — where a torn tail is expected and truncates — a
// corrupt frame on a live connection has no recovery point, so both ends
// drop the connection.
//
// # Conversation
//
// The client opens with Hello (magic + version); the server answers
// HelloAck (version, shard count, server clock) or Error. After the
// handshake the client sends Batch frames — each carrying up to MaxBatch
// requests — and, optionally, one Subscribe frame. The server answers
// every Batch with exactly one BatchReply carrying one result per request
// in order, and pushes Events frames to subscribed connections as the
// merged stream grows. Replies to concurrent batches may interleave with
// event pushes; BatchReply.ID correlates.
//
// # Batch semantics
//
// Admissions in one batch are enqueued into the server's per-shard
// admission rings (shard.Admitter) and the reply waits for all of them to
// drain — so a reply in hand means every admitted object is in its shard
// (and, on a durable server, WAL-recorded). Advance and Withdraw entries
// apply after the batch's admissions, in batch order. Advance carries no
// timestamp: the server advances to its own clock, so a remote client can
// never yank time forward and expire other clients' objects.
//
// # Backpressure
//
// A full admission ring refuses the enqueue immediately and the entry's
// result is StatusBusy with a retry-after hint in seconds; the rest of
// the batch is unaffected. BUSY is per-entry and retryable; Error frames
// are fatal (the connection closes after one).
//
// # Idempotency (version 2)
//
// The network between a client and the server is assumed adversarial:
// an acknowledgment can be lost after the server applied the batch, so a
// client that resends after a reconnect would double-admit under a naive
// protocol. Version 2 makes at-least-once delivery produce exactly-once
// effects: the Hello carries a stable 64-bit client id, every effectful
// request (admission or withdrawal) carries a client-assigned sequence
// number, and the server keeps a bounded per-client window of completed
// (seq -> result) records. A re-sent op whose seq is already recorded is
// answered with the original receipt instead of being re-applied; a seq
// that has aged out of the window is refused with StatusErr, because the
// server can no longer tell whether it executed. Seq 0 is reserved
// (Client.Do assigns unset seqs itself) and refused. Advance carries no
// seq: it moves the server to its own clock, so replaying it is harmless.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net"
	"sync"
	"time"
)

// Magic opens every Hello; Version is the protocol version this package
// speaks. A server refuses other versions with an Error frame, so the
// version byte is the compatibility gate for any future payload change.
// Version 2 added idempotency tokens: the Hello carries a 64-bit client
// id and every effectful request a client-assigned seq; a token-less
// version-1 client is refused at the handshake with a fatal Error frame.
const (
	Magic   = "FTWIRE\x00"
	Version = 2
)

// MaxPayload bounds one frame's payload; MaxBatch bounds requests per
// Batch frame (fits comfortably under MaxPayload at 41 bytes/request).
const (
	MaxPayload = 1 << 20
	MaxBatch   = 4096
)

// Message types (first payload byte).
const (
	MsgHello      byte = 0x01 // c→s: magic, version, u64 client id
	MsgHelloAck   byte = 0x02 // s→c: version, u32 shards, f64 now
	MsgBatch      byte = 0x10 // c→s: u64 id, u16 count, requests
	MsgBatchReply byte = 0x11 // s→c: u64 id, u16 count, results
	MsgSubscribe  byte = 0x20 // c→s: u64 since (SinceNow = from now)
	MsgEvents     byte = 0x21 // s→c: u64 next cursor, u16 count, events
	MsgEventsGone byte = 0x22 // s→c: u64 oldest (retention overran cursor)
	MsgError      byte = 0x7F // either: u16 len, utf8 message; fatal
)

// Request kinds within a Batch. Every kind except Advance is effectful
// and carries a u64 idempotency seq ahead of its fields.
const (
	ReqAddWorker      byte = 0x01 // u64 seq, f64 x, y, arrive, patience
	ReqAddTask        byte = 0x02 // u64 seq, f64 x, y, release, expiry
	ReqAdvance        byte = 0x03 // empty
	ReqWithdrawWorker byte = 0x04 // u64 seq, u32 shard, u32 local, u64 epoch
	ReqWithdrawTask   byte = 0x05
)

// Effectful reports whether kind mutates server state and therefore
// carries (and requires) an idempotency seq.
func Effectful(kind byte) bool { return kind != ReqAdvance }

// Result statuses.
const (
	StatusOK   byte = 0
	StatusBusy byte = 1 // admission ring full; retry after RetryAfter
	StatusErr  byte = 2 // request refused; Msg explains
)

// SinceNow as Subscribe.Since requests events from the stream head.
const SinceNow = ^uint64(0)

// Request is one entry of a Batch. The populated fields depend on Kind:
// admissions use X/Y/At/Window (At is the arrival/release time — NaN asks
// the server to stamp its own clock; Window is patience/expiry),
// withdrawals use Shard/Local/Epoch (the receipt a prior admission
// returned), Advance uses nothing.
//
// Seq is the idempotency token of an effectful request: unique and
// monotone per client, stable across resends. The server replays the
// recorded result for a seq it has already completed. Leave it 0 and
// Client.Do assigns the next token; the server refuses a literal 0.
type Request struct {
	Kind   byte
	Seq    uint64
	X, Y   float64
	At     float64
	Window float64
	Shard  uint32
	Local  uint32
	Epoch  uint64
}

// Result is one entry of a BatchReply, positionally matching the batch's
// requests. For OK admissions Shard/Local/Epoch are the withdrawal
// receipt and Time the server-stamped arrival; for OK advances Time is
// the server clock after the advance; for OK withdrawals Applied reports
// whether the object was still live. BUSY carries RetryAfter (seconds);
// ERR carries Msg.
type Result struct {
	Kind       byte
	Status     byte
	Shard      uint32
	Local      uint32
	Epoch      uint64
	Time       float64
	Applied    bool
	RetryAfter float64
	Msg        string
}

// Event is one merged-stream lifecycle event (see shard.Event; handles
// are owner-shard admission receipts, -1 for the side an expiry does not
// involve).
type Event struct {
	Seq         uint64
	Shard       int32
	Kind        byte // sim.SessionEventKind
	Worker      int32
	Task        int32
	Time        float64
	WorkerShard int32
	TaskShard   int32
}

// HelloAck is the server's handshake answer.
type HelloAck struct {
	Version byte
	Shards  uint32
	Now     float64
}

var (
	// ErrCRC reports a frame whose payload failed its checksum.
	ErrCRC = errors.New("wire: frame CRC mismatch")
	// ErrTooLarge reports a frame length outside (0, MaxPayload].
	ErrTooLarge = errors.New("wire: frame length out of bounds")
)

// RemoteError is an Error frame received from the peer; it is fatal to
// the connection.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "wire: remote error: " + e.Msg }

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// --- encoding ---------------------------------------------------------

func appendU16(dst []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(dst, v) }
func appendU32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }
func appendU64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }
func appendF64(dst []byte, v float64) []byte {
	return appendU64(dst, math.Float64bits(v))
}

// AppendHello encodes a Hello payload carrying the client's stable id.
func AppendHello(dst []byte, clientID uint64) []byte {
	dst = append(dst, MsgHello)
	dst = append(dst, Magic...)
	dst = append(dst, Version)
	return appendU64(dst, clientID)
}

// AppendHelloAck encodes a HelloAck payload.
func AppendHelloAck(dst []byte, shards uint32, now float64) []byte {
	dst = append(dst, MsgHelloAck, Version)
	dst = appendU32(dst, shards)
	return appendF64(dst, now)
}

// AppendError encodes an Error payload.
func AppendError(dst []byte, msg string) []byte {
	if len(msg) > 1<<10 {
		msg = msg[:1<<10]
	}
	dst = append(dst, MsgError)
	dst = appendU16(dst, uint16(len(msg)))
	return append(dst, msg...)
}

// AppendBatch encodes a Batch payload. len(reqs) must be in [1, MaxBatch].
func AppendBatch(dst []byte, id uint64, reqs []Request) ([]byte, error) {
	if len(reqs) == 0 || len(reqs) > MaxBatch {
		return dst, fmt.Errorf("wire: batch of %d requests (want 1..%d)", len(reqs), MaxBatch)
	}
	dst = append(dst, MsgBatch)
	dst = appendU64(dst, id)
	dst = appendU16(dst, uint16(len(reqs)))
	for i := range reqs {
		r := &reqs[i]
		dst = append(dst, r.Kind)
		switch r.Kind {
		case ReqAddWorker, ReqAddTask:
			dst = appendU64(dst, r.Seq)
			dst = appendF64(dst, r.X)
			dst = appendF64(dst, r.Y)
			dst = appendF64(dst, r.At)
			dst = appendF64(dst, r.Window)
		case ReqAdvance:
		case ReqWithdrawWorker, ReqWithdrawTask:
			dst = appendU64(dst, r.Seq)
			dst = appendU32(dst, r.Shard)
			dst = appendU32(dst, r.Local)
			dst = appendU64(dst, r.Epoch)
		default:
			return dst, fmt.Errorf("wire: unknown request kind 0x%02x", r.Kind)
		}
	}
	return dst, nil
}

// AppendBatchReply encodes a BatchReply payload for results.
func AppendBatchReply(dst []byte, id uint64, results []Result) []byte {
	dst = append(dst, MsgBatchReply)
	dst = appendU64(dst, id)
	dst = appendU16(dst, uint16(len(results)))
	for i := range results {
		r := &results[i]
		dst = append(dst, r.Kind, r.Status)
		switch r.Status {
		case StatusOK:
			switch r.Kind {
			case ReqAddWorker, ReqAddTask:
				dst = appendU32(dst, r.Shard)
				dst = appendU32(dst, r.Local)
				dst = appendU64(dst, r.Epoch)
				dst = appendF64(dst, r.Time)
			case ReqAdvance:
				dst = appendF64(dst, r.Time)
			case ReqWithdrawWorker, ReqWithdrawTask:
				if r.Applied {
					dst = append(dst, 1)
				} else {
					dst = append(dst, 0)
				}
			}
		case StatusBusy:
			dst = appendF64(dst, r.RetryAfter)
		default:
			msg := r.Msg
			if len(msg) > 1<<10 {
				msg = msg[:1<<10]
			}
			dst = appendU16(dst, uint16(len(msg)))
			dst = append(dst, msg...)
		}
	}
	return dst
}

// AppendSubscribe encodes a Subscribe payload.
func AppendSubscribe(dst []byte, since uint64) []byte {
	dst = append(dst, MsgSubscribe)
	return appendU64(dst, since)
}

// AppendEvents encodes an Events payload: the cursor to resume from plus
// the batch. len(evs) must fit a u16.
func AppendEvents(dst []byte, next uint64, evs []Event) []byte {
	dst = append(dst, MsgEvents)
	dst = appendU64(dst, next)
	dst = appendU16(dst, uint16(len(evs)))
	for i := range evs {
		e := &evs[i]
		dst = appendU64(dst, e.Seq)
		dst = appendU32(dst, uint32(e.Shard))
		dst = append(dst, e.Kind)
		dst = appendU32(dst, uint32(e.Worker))
		dst = appendU32(dst, uint32(e.Task))
		dst = appendF64(dst, e.Time)
		dst = appendU32(dst, uint32(e.WorkerShard))
		dst = appendU32(dst, uint32(e.TaskShard))
	}
	return dst
}

// AppendEventsGone encodes an EventsGone payload.
func AppendEventsGone(dst []byte, oldest uint64) []byte {
	dst = append(dst, MsgEventsGone)
	return appendU64(dst, oldest)
}

// --- decoding ---------------------------------------------------------

// cursor is a little-endian payload reader with a sticky error.
type cursor struct {
	p   []byte
	off int
	err error
}

func (c *cursor) fail(what string) {
	if c.err == nil {
		c.err = fmt.Errorf("wire: truncated %s at offset %d", what, c.off)
	}
}

func (c *cursor) u8(what string) byte {
	if c.err != nil || c.off+1 > len(c.p) {
		c.fail(what)
		return 0
	}
	v := c.p[c.off]
	c.off++
	return v
}

func (c *cursor) u16(what string) uint16 {
	if c.err != nil || c.off+2 > len(c.p) {
		c.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint16(c.p[c.off:])
	c.off += 2
	return v
}

func (c *cursor) u32(what string) uint32 {
	if c.err != nil || c.off+4 > len(c.p) {
		c.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(c.p[c.off:])
	c.off += 4
	return v
}

func (c *cursor) u64(what string) uint64 {
	if c.err != nil || c.off+8 > len(c.p) {
		c.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(c.p[c.off:])
	c.off += 8
	return v
}

func (c *cursor) f64(what string) float64 { return math.Float64frombits(c.u64(what)) }

func (c *cursor) str(n int, what string) string {
	if c.err != nil || c.off+n > len(c.p) {
		c.fail(what)
		return ""
	}
	v := string(c.p[c.off : c.off+n])
	c.off += n
	return v
}

func (c *cursor) done(msg string) error {
	if c.err != nil {
		return c.err
	}
	if c.off != len(c.p) {
		return fmt.Errorf("wire: %d trailing bytes after %s", len(c.p)-c.off, msg)
	}
	return nil
}

// DecodeHello validates a Hello payload (type byte included). For a
// foreign version the magic and version are still parsed — the remainder
// of the payload is version-specific and ignored — so the caller can
// refuse with an accurate version-mismatch message.
func DecodeHello(p []byte) (version byte, clientID uint64, err error) {
	c := cursor{p: p, off: 1}
	magic := c.str(len(Magic), "magic")
	version = c.u8("version")
	if c.err != nil {
		return 0, 0, c.err
	}
	if magic != Magic {
		return 0, 0, errors.New("wire: bad magic (not an ftoa wire client)")
	}
	if version != Version {
		return version, 0, nil
	}
	clientID = c.u64("client id")
	if err := c.done("hello"); err != nil {
		return 0, 0, err
	}
	return version, clientID, nil
}

// DecodeHelloAck decodes a HelloAck payload.
func DecodeHelloAck(p []byte) (HelloAck, error) {
	c := cursor{p: p, off: 1}
	ack := HelloAck{
		Version: c.u8("version"),
		Shards:  c.u32("shards"),
		Now:     c.f64("now"),
	}
	return ack, c.done("helloack")
}

// DecodeError decodes an Error payload into a RemoteError.
func DecodeError(p []byte) error {
	c := cursor{p: p, off: 1}
	n := int(c.u16("error length"))
	msg := c.str(n, "error message")
	if err := c.done("error"); err != nil {
		return err
	}
	return &RemoteError{Msg: msg}
}

// DecodeBatch decodes a Batch payload, appending requests to dst.
func DecodeBatch(p []byte, dst []Request) (id uint64, reqs []Request, err error) {
	c := cursor{p: p, off: 1}
	id = c.u64("batch id")
	n := int(c.u16("batch count"))
	if n == 0 || n > MaxBatch {
		return 0, dst, fmt.Errorf("wire: batch count %d out of bounds", n)
	}
	reqs = dst
	for i := 0; i < n && c.err == nil; i++ {
		var r Request
		r.Kind = c.u8("request kind")
		switch r.Kind {
		case ReqAddWorker, ReqAddTask:
			r.Seq = c.u64("seq")
			r.X = c.f64("x")
			r.Y = c.f64("y")
			r.At = c.f64("at")
			r.Window = c.f64("window")
		case ReqAdvance:
		case ReqWithdrawWorker, ReqWithdrawTask:
			r.Seq = c.u64("seq")
			r.Shard = c.u32("shard")
			r.Local = c.u32("local")
			r.Epoch = c.u64("epoch")
		default:
			return 0, reqs, fmt.Errorf("wire: unknown request kind 0x%02x at entry %d", r.Kind, i)
		}
		reqs = append(reqs, r)
	}
	return id, reqs, c.done("batch")
}

// DecodeBatchReply decodes a BatchReply payload.
func DecodeBatchReply(p []byte) (id uint64, results []Result, err error) {
	c := cursor{p: p, off: 1}
	id = c.u64("reply id")
	n := int(c.u16("reply count"))
	results = make([]Result, 0, n)
	for i := 0; i < n && c.err == nil; i++ {
		var r Result
		r.Kind = c.u8("result kind")
		r.Status = c.u8("result status")
		switch r.Status {
		case StatusOK:
			switch r.Kind {
			case ReqAddWorker, ReqAddTask:
				r.Shard = c.u32("shard")
				r.Local = c.u32("local")
				r.Epoch = c.u64("epoch")
				r.Time = c.f64("time")
			case ReqAdvance:
				r.Time = c.f64("now")
			case ReqWithdrawWorker, ReqWithdrawTask:
				r.Applied = c.u8("applied") != 0
			default:
				return 0, results, fmt.Errorf("wire: unknown result kind 0x%02x", r.Kind)
			}
		case StatusBusy:
			r.RetryAfter = c.f64("retry after")
		case StatusErr:
			r.Msg = c.str(int(c.u16("message length")), "message")
		default:
			return 0, results, fmt.Errorf("wire: unknown status 0x%02x", r.Status)
		}
		results = append(results, r)
	}
	return id, results, c.done("batch reply")
}

// DecodeSubscribe decodes a Subscribe payload.
func DecodeSubscribe(p []byte) (since uint64, err error) {
	c := cursor{p: p, off: 1}
	since = c.u64("since")
	return since, c.done("subscribe")
}

// DecodeEvents decodes an Events payload.
func DecodeEvents(p []byte) (next uint64, evs []Event, err error) {
	c := cursor{p: p, off: 1}
	next = c.u64("next cursor")
	n := int(c.u16("event count"))
	evs = make([]Event, 0, n)
	for i := 0; i < n && c.err == nil; i++ {
		evs = append(evs, Event{
			Seq:         c.u64("seq"),
			Shard:       int32(c.u32("shard")),
			Kind:        c.u8("kind"),
			Worker:      int32(c.u32("worker")),
			Task:        int32(c.u32("task")),
			Time:        c.f64("time"),
			WorkerShard: int32(c.u32("worker shard")),
			TaskShard:   int32(c.u32("task shard")),
		})
	}
	return next, evs, c.done("events")
}

// DecodeEventsGone decodes an EventsGone payload.
func DecodeEventsGone(p []byte) (oldest uint64, err error) {
	c := cursor{p: p, off: 1}
	oldest = c.u64("oldest")
	return oldest, c.done("events gone")
}

// --- framed connection ------------------------------------------------

// Conn frames messages over a byte stream. ReadFrame is single-reader;
// WriteFrame is safe for concurrent use (serialized by an internal
// mutex), so a client's batcher and subscriber never interleave bytes.
//
// ReadTimeout and WriteTimeout, when positive, bound each frame
// operation: the matching net.Conn deadline is armed at the start of
// every ReadFrame/WriteFrame, so a peer that goes silent mid-frame (or a
// subscriber that stops draining its receive window) surfaces as a
// timeout error instead of wedging the goroutine forever. Set them
// before handing the Conn to concurrent users.
type Conn struct {
	c            net.Conn
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	rhdr         [8]byte
	rbuf         []byte
	wmu          sync.Mutex
	wbuf         []byte
}

// NewConn wraps an established byte stream.
func NewConn(c net.Conn) *Conn { return &Conn{c: c} }

// ReadFrame reads one frame and returns its payload, which is only valid
// until the next ReadFrame. Framing violations (bad length, bad CRC)
// return ErrTooLarge/ErrCRC; the caller must drop the connection.
func (cn *Conn) ReadFrame() ([]byte, error) {
	if cn.ReadTimeout > 0 {
		cn.c.SetReadDeadline(time.Now().Add(cn.ReadTimeout))
	}
	if _, err := io.ReadFull(cn.c, cn.rhdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(cn.rhdr[0:4])
	sum := binary.LittleEndian.Uint32(cn.rhdr[4:8])
	if n == 0 || n > MaxPayload {
		return nil, ErrTooLarge
	}
	if cap(cn.rbuf) < int(n) {
		cn.rbuf = make([]byte, n)
	}
	cn.rbuf = cn.rbuf[:n]
	if _, err := io.ReadFull(cn.c, cn.rbuf); err != nil {
		return nil, err
	}
	if crc32.Checksum(cn.rbuf, castagnoli) != sum {
		return nil, ErrCRC
	}
	return cn.rbuf, nil
}

// WriteFrame frames and writes one payload.
func (cn *Conn) WriteFrame(payload []byte) error {
	cn.wmu.Lock()
	defer cn.wmu.Unlock()
	if cn.WriteTimeout > 0 {
		cn.c.SetWriteDeadline(time.Now().Add(cn.WriteTimeout))
	}
	var h [8]byte
	binary.LittleEndian.PutUint32(h[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(h[4:8], crc32.Checksum(payload, castagnoli))
	cn.wbuf = append(cn.wbuf[:0], h[:]...)
	cn.wbuf = append(cn.wbuf, payload...)
	_, err := cn.c.Write(cn.wbuf)
	return err
}

// WriteError sends an Error frame; the connection should close after.
func (cn *Conn) WriteError(msg string) error {
	return cn.WriteFrame(AppendError(nil, msg))
}

// Close closes the underlying stream.
func (cn *Conn) Close() error { return cn.c.Close() }

// ServerHandshake performs the server side: read Hello, verify magic,
// version and client id, answer HelloAck. On version mismatch — which is
// how a token-less legacy client presents — it sends a fatal Error frame
// and returns the reason; the returned client id keys the server's
// idempotency window for the connection.
func ServerHandshake(cn *Conn, shards uint32, now float64) (clientID uint64, err error) {
	p, err := cn.ReadFrame()
	if err != nil {
		return 0, err
	}
	if len(p) == 0 || p[0] != MsgHello {
		cn.WriteError("expected Hello")
		return 0, errors.New("wire: expected Hello")
	}
	v, id, err := DecodeHello(p)
	if err != nil {
		cn.WriteError(err.Error())
		return 0, err
	}
	if v != Version {
		err := fmt.Errorf("wire: version %d not supported (server speaks %d; v2 requires idempotency tokens)", v, Version)
		cn.WriteError(err.Error())
		return 0, err
	}
	if id == 0 {
		err := errors.New("wire: client id must be nonzero (idempotency key)")
		cn.WriteError(err.Error())
		return 0, err
	}
	return id, cn.WriteFrame(AppendHelloAck(nil, shards, now))
}

// ClientHandshake performs the client side: send Hello with the client's
// stable id, read HelloAck.
func ClientHandshake(cn *Conn, clientID uint64) (HelloAck, error) {
	if err := cn.WriteFrame(AppendHello(nil, clientID)); err != nil {
		return HelloAck{}, err
	}
	p, err := cn.ReadFrame()
	if err != nil {
		return HelloAck{}, err
	}
	switch {
	case len(p) == 0:
		return HelloAck{}, errors.New("wire: empty handshake reply")
	case p[0] == MsgError:
		return HelloAck{}, DecodeError(p)
	case p[0] != MsgHelloAck:
		return HelloAck{}, fmt.Errorf("wire: unexpected handshake reply 0x%02x", p[0])
	}
	ack, err := DecodeHelloAck(p)
	if err != nil {
		return HelloAck{}, err
	}
	if ack.Version != Version {
		return HelloAck{}, fmt.Errorf("wire: server version %d, client speaks %d", ack.Version, Version)
	}
	return ack, nil
}
