package wire

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"net"
	"reflect"
	"sync"
	"testing"
)

func TestBatchRoundTrip(t *testing.T) {
	reqs := []Request{
		{Kind: ReqAddWorker, X: 1.5, Y: 2.25, At: 3, Window: 4},
		{Kind: ReqAddTask, X: 9, Y: 8, At: math.NaN(), Window: 6},
		{Kind: ReqAdvance},
		{Kind: ReqWithdrawWorker, Shard: 3, Local: 17, Epoch: 5},
		{Kind: ReqWithdrawTask, Shard: 0, Local: 2, Epoch: 0},
	}
	p, err := AppendBatch(nil, 42, reqs)
	if err != nil {
		t.Fatal(err)
	}
	id, got, err := DecodeBatch(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if id != 42 || len(got) != len(reqs) {
		t.Fatalf("id=%d n=%d, want 42/%d", id, len(got), len(reqs))
	}
	for i := range reqs {
		w, g := reqs[i], got[i]
		// NaN != NaN; compare bit patterns for the At field.
		if math.Float64bits(w.At) != math.Float64bits(g.At) {
			t.Fatalf("req %d At bits differ", i)
		}
		w.At, g.At = 0, 0
		if w != g {
			t.Fatalf("req %d = %+v, want %+v", i, g, w)
		}
	}
}

func TestBatchReplyRoundTrip(t *testing.T) {
	results := []Result{
		{Kind: ReqAddWorker, Status: StatusOK, Shard: 1, Local: 9, Epoch: 2, Time: 7.5},
		{Kind: ReqAddTask, Status: StatusBusy, RetryAfter: 0.25},
		{Kind: ReqAdvance, Status: StatusOK, Time: 11},
		{Kind: ReqWithdrawWorker, Status: StatusOK, Applied: true},
		{Kind: ReqWithdrawTask, Status: StatusErr, Msg: "stale handle"},
	}
	p := AppendBatchReply(nil, 7, results)
	id, got, err := DecodeBatchReply(p)
	if err != nil {
		t.Fatal(err)
	}
	if id != 7 || !reflect.DeepEqual(got, results) {
		t.Fatalf("id=%d got %+v, want %+v", id, got, results)
	}
}

func TestEventsRoundTrip(t *testing.T) {
	evs := []Event{
		{Seq: 0, Shard: 2, Kind: 0, Worker: 3, Task: 4, Time: 1.5, WorkerShard: 2, TaskShard: 1},
		{Seq: 9, Shard: 0, Kind: 1, Worker: 5, Task: -1, Time: 2.5, WorkerShard: 0, TaskShard: -1},
	}
	p := AppendEvents(nil, 10, evs)
	next, got, err := DecodeEvents(p)
	if err != nil {
		t.Fatal(err)
	}
	if next != 10 || !reflect.DeepEqual(got, evs) {
		t.Fatalf("next=%d got %+v, want %+v", next, got, evs)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	p, err := AppendBatch(nil, 1, []Request{{Kind: ReqAddWorker, X: 1, Y: 2, At: 3, Window: 4}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(p); cut++ {
		if _, _, err := DecodeBatch(p[:cut], nil); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage is rejected too.
	if _, _, err := DecodeBatch(append(p, 0xFF), nil); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestFrameCRC(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	defer client.Close()
	sc, cc := NewConn(server), NewConn(client)
	go sc.WriteFrame([]byte{MsgHello, 1, 2, 3})
	p, err := cc.ReadFrame()
	if err != nil || len(p) != 4 {
		t.Fatalf("ReadFrame = %v, %v", p, err)
	}

	// Corrupt one payload byte behind a valid header: the reader must
	// refuse with ErrCRC.
	raw := AppendHello(nil, 1)
	framed := make([]byte, 8, 8+len(raw))
	binary.LittleEndian.PutUint32(framed[0:4], uint32(len(raw)))
	binary.LittleEndian.PutUint32(framed[4:8], crc32.Checksum(raw, castagnoli))
	framed = append(framed, raw...)
	framed[8] ^= 0xFF
	go server.Write(framed)
	if _, err := cc.ReadFrame(); err != ErrCRC {
		t.Fatalf("corrupt frame: err = %v, want ErrCRC", err)
	}

	// An absurd length field refuses before allocating.
	oversize := make([]byte, 8)
	binary.LittleEndian.PutUint32(oversize[0:4], MaxPayload+1)
	go server.Write(oversize)
	if _, err := cc.ReadFrame(); err != ErrTooLarge {
		t.Fatalf("oversize frame: err = %v, want ErrTooLarge", err)
	}
}

func TestHandshakeVersionMismatch(t *testing.T) {
	server, client := net.Pipe()
	sc, cc := NewConn(server), NewConn(client)
	go func() {
		// A client speaking a future version.
		p := AppendHello(nil, 1)
		p[1+len(Magic)] = Version + 1
		cc.WriteFrame(p)
		cc.ReadFrame() // drain the Error frame
		client.Close()
	}()
	if _, err := ServerHandshake(sc, 4, 0); err == nil {
		t.Fatal("future version accepted")
	}
	server.Close()
}

func TestHandshakeRejectsZeroClientID(t *testing.T) {
	server, client := net.Pipe()
	sc, cc := NewConn(server), NewConn(client)
	errc := make(chan error, 1)
	go func() {
		// A client that "forgot" to pick an idempotency identity.
		cc.WriteFrame(AppendHello(nil, 0))
		p, err := cc.ReadFrame()
		if err == nil && len(p) > 0 && p[0] == MsgError {
			err = DecodeError(p)
		}
		errc <- err
		client.Close()
	}()
	if _, err := ServerHandshake(sc, 4, 0); err == nil {
		t.Fatal("zero client id accepted")
	}
	var remote *RemoteError
	if err := <-errc; !errors.As(err, &remote) {
		t.Fatalf("client saw %v, want a fatal Error frame", err)
	}
	server.Close()
}

func TestHandshakeRejectsForeignClient(t *testing.T) {
	server, client := net.Pipe()
	sc := NewConn(server)
	go func() {
		// An HTTP client that dialed the wrong port.
		client.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"))
		client.Close()
	}()
	if _, err := ServerHandshake(sc, 1, 0); err == nil {
		t.Fatal("foreign byte stream accepted")
	}
	server.Close()
}

// TestClientPipelines: a stub server answering out of order still gets
// every reply to the right Do call, and event pushes reach the handler.
func TestClientPipelines(t *testing.T) {
	server, client := net.Pipe()
	sc := NewConn(server)
	go func() {
		if _, err := ServerHandshake(sc, 2, 5); err != nil {
			t.Error(err)
			return
		}
		// Collect two batches, then reply in reverse order with an event
		// push between them.
		type b struct {
			id   uint64
			reqs []Request
		}
		var batches []b
		for len(batches) < 2 {
			p, err := sc.ReadFrame()
			if err != nil {
				t.Error(err)
				return
			}
			if p[0] != MsgBatch {
				continue
			}
			id, reqs, err := DecodeBatch(p, nil)
			if err != nil {
				t.Error(err)
				return
			}
			batches = append(batches, b{id, reqs})
		}
		reply := func(bt b) {
			results := make([]Result, len(bt.reqs))
			for i, r := range bt.reqs {
				results[i] = Result{Kind: r.Kind, Status: StatusOK, Time: r.X}
			}
			sc.WriteFrame(AppendBatchReply(nil, bt.id, results))
		}
		reply(batches[1])
		sc.WriteFrame(AppendEvents(nil, 3, []Event{{Seq: 2, Kind: 1, Worker: 1, Task: -1}}))
		reply(batches[0])
	}()

	cl, err := NewClient(client)
	if err != nil {
		t.Fatal(err)
	}
	if ack := cl.Hello(); ack.Shards != 2 || ack.Now != 5 {
		t.Fatalf("ack = %+v", ack)
	}
	var evMu sync.Mutex
	var pushed []Event
	if err := cl.Subscribe(SinceNow, func(next uint64, evs []Event) {
		evMu.Lock()
		pushed = append(pushed, evs...)
		evMu.Unlock()
	}, nil); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(x float64) {
			defer wg.Done()
			res, err := cl.Do([]Request{{Kind: ReqAddWorker, X: x, Window: 1}})
			if err != nil {
				t.Errorf("Do(%v): %v", x, err)
				return
			}
			if len(res) != 1 || res[0].Time != x {
				t.Errorf("Do(%v) = %+v, want echo", x, res)
			}
		}(float64(i + 1))
	}
	wg.Wait()
	cl.Close()
	server.Close()
	evMu.Lock()
	defer evMu.Unlock()
	if len(pushed) != 1 || pushed[0].Seq != 2 {
		t.Fatalf("pushed events = %+v, want the one push", pushed)
	}
}
