package workload

import (
	"fmt"
	"math"

	"ftoa/internal/geo"
	"ftoa/internal/mathx"
	"ftoa/internal/model"
	"ftoa/internal/timeslot"
)

// City configures the multi-day taxi-calling trace generator that stands in
// for the paper's proprietary Didi datasets (Beijing and Hangzhou, Jul–Dec
// 2016). It produces (a) a per-day, per-slot, per-area count history with
// day-of-week, rush-hour, hotspot and weather structure — the input the
// Section 6.3 predictors consume — and (b) realized arrival streams for
// test days — the input the online assignment experiments consume.
//
// See DESIGN.md §5 for why this preserves the behaviours the paper's
// experiments exercise.
type City struct {
	Name string

	Cols, Rows  int // prediction grid (paper: 20 × 30 = 600 areas)
	SlotsPerDay int // paper: 96 slots of 15 min
	Days        int // history length, last day(s) used for testing

	WorkersPerDay int // paper Beijing: 50637, Hangzhou: 49324
	TasksPerDay   int // paper Beijing: 54129, Hangzhou: 48507

	Hotspots int // number of spatial demand clusters

	WorkerPatience float64 // Dw in slot units (paper: 2)
	TaskExpiry     float64 // Dr in slot units (paper sweeps 0.5–1.5)
	Velocity       float64 // space units per slot unit

	Seed uint64
}

// Beijing returns a configuration shaped like the paper's Beijing dataset.
// The defaults are scaled to one day of the sampled trace.
func Beijing() City {
	return City{
		Name: "Beijing", Cols: 20, Rows: 30, SlotsPerDay: 96, Days: 28,
		WorkersPerDay: 50637, TasksPerDay: 54129, Hotspots: 6,
		WorkerPatience: 2, TaskExpiry: 1, Velocity: 5, Seed: 0xBEE,
	}
}

// Hangzhou returns a configuration shaped like the paper's Hangzhou
// dataset.
func Hangzhou() City {
	return City{
		Name: "Hangzhou", Cols: 20, Rows: 30, SlotsPerDay: 96, Days: 28,
		WorkersPerDay: 49324, TasksPerDay: 48507, Hotspots: 5,
		WorkerPatience: 2, TaskExpiry: 1, Velocity: 5, Seed: 0x4A52,
	}
}

// Trace is a generated multi-day city history plus the machinery to realize
// arrival streams for individual days.
type Trace struct {
	City  City
	Grid  *geo.Grid
	Slots *timeslot.Slotting // slots of one day

	// WorkerCounts and TaskCounts hold the realized historical counts:
	// index [day][slot*areas + area].
	WorkerCounts [][]int
	TaskCounts   [][]int

	// Weather is the per-(day, slot) weather intensity in [0, 1]
	// (0 = clear, 1 = heavy rain), one of the covariates the non-linear
	// predictors of Table 5 can exploit.
	Weather [][]float64

	// DayOfWeek holds 0–6 per day (0 = Monday).
	DayOfWeek []int

	// Underlying intensities (per day), kept so tests can compare realized
	// counts against the generating process.
	workerLambda [][]float64
	taskLambda   [][]float64

	rng *mathx.RNG
}

// hotspot is one spatial demand cluster.
type hotspot struct {
	center geo.Point
	sigma  float64
	weight float64
}

// Generate builds the full history. It is deterministic in City.Seed.
func (c City) Generate() (*Trace, error) {
	switch {
	case c.Cols <= 0 || c.Rows <= 0:
		return nil, fmt.Errorf("workload: bad city grid %dx%d", c.Cols, c.Rows)
	case c.SlotsPerDay <= 0 || c.Days <= 0:
		return nil, fmt.Errorf("workload: bad city horizon %d slots × %d days", c.SlotsPerDay, c.Days)
	case c.WorkersPerDay < 0 || c.TasksPerDay < 0:
		return nil, fmt.Errorf("workload: negative populations")
	case c.Hotspots <= 0:
		return nil, fmt.Errorf("workload: need at least one hotspot")
	case c.Velocity <= 0:
		return nil, fmt.Errorf("workload: non-positive velocity")
	}
	rng := mathx.NewRNG(c.Seed)
	grid := geo.NewGrid(geo.NewRect(0, 0, float64(c.Cols), float64(c.Rows)), c.Cols, c.Rows)
	slots := timeslot.New(float64(c.SlotsPerDay), c.SlotsPerDay)
	tr := &Trace{
		City:  c,
		Grid:  grid,
		Slots: slots,
		rng:   rng,
	}

	// Spatial structure with commute asymmetry: morning demand concentrates
	// in residential districts, evening demand in business districts, and
	// the two sets of hotspots sit in different parts of the city. Idle
	// supply is distributed diffusely around the *average* demand — taxis
	// wait where the day's traffic generally is, not where the next rush
	// will be. This shifting demand geography is exactly the situation the
	// paper's worker guidance exploits and wait-in-place baselines cannot
	// follow. Hotspot geometry is expressed relative to the grid dimension
	// so scaled-down cities keep the same concentration structure.
	dim := float64(c.Cols)
	if float64(c.Rows) < dim {
		dim = float64(c.Rows)
	}
	newSpots := func(n int) []hotspot {
		spots := make([]hotspot, n)
		for i := range spots {
			spots[i] = hotspot{
				center: geo.Pt(rng.Float64()*float64(c.Cols), rng.Float64()*float64(c.Rows)),
				sigma:  (0.03 + 0.06*rng.Float64()) * dim,
				weight: 0.4 + rng.Float64()*1.2,
			}
		}
		return spots
	}
	morningSpots := newSpots(c.Hotspots)
	eveningSpots := newSpots(c.Hotspots)
	morningShares := spatialShares(grid, morningSpots)
	eveningShares := spatialShares(grid, eveningSpots)

	// Supply: wider clusters offset from the average demand.
	workerSpots := make([]hotspot, 0, 2*c.Hotspots)
	for _, src := range [][]hotspot{morningSpots, eveningSpots} {
		for _, h := range src {
			workerSpots = append(workerSpots, hotspot{
				center: h.center.Add(geo.Pt(rng.NormalMS(0, 0.12*dim), rng.NormalMS(0, 0.12*dim))),
				sigma:  h.sigma * (2.0 + rng.Float64()),
				weight: h.weight * (0.8 + rng.Float64()*0.4),
			})
		}
	}
	workerSpatial := spatialShares(grid, workerSpots)

	// Temporal structure: morning and evening rush hours over a base load.
	// Supply is much flatter than demand, so rush hours locally exhaust
	// the idle workers near a hotspot.
	taskTemporal := rushHourProfile(c.SlotsPerDay, 0.45)
	workerTemporal := rushHourProfile(c.SlotsPerDay, 0.15)

	// Per-slot blend between the morning and evening demand geography:
	// before noon demand follows the morning map, after noon it migrates
	// to the evening map.
	morningBlend := make([]float64, c.SlotsPerDay)
	for s := range morningBlend {
		hour := float64(s) / float64(c.SlotsPerDay) * 24
		morningBlend[s] = 1 / (1 + math.Exp((hour-13)/1.5))
	}

	areas := grid.NumCells()
	tr.WorkerCounts = make([][]int, c.Days)
	tr.TaskCounts = make([][]int, c.Days)
	tr.Weather = make([][]float64, c.Days)
	tr.DayOfWeek = make([]int, c.Days)
	tr.workerLambda = make([][]float64, c.Days)
	tr.taskLambda = make([][]float64, c.Days)

	noiseRNG := rng.Split()
	weatherRNG := rng.Split()
	countRNG := rng.Split()

	for day := 0; day < c.Days; day++ {
		dow := day % 7
		tr.DayOfWeek[day] = dow
		// Weekday factor: demand dips on weekends (5 = Sat, 6 = Sun),
		// supply dips slightly less.
		dowTask := 1.0
		dowWorker := 1.0
		if dow >= 5 {
			dowTask = 0.78
			dowWorker = 0.88
		}
		// Weather: smooth per-day storm intensity with within-day drift.
		base := weatherRNG.Float64()
		storm := base * base // most days clear, some rainy
		weather := make([]float64, c.SlotsPerDay)
		level := storm * weatherRNG.Float64()
		for s := 0; s < c.SlotsPerDay; s++ {
			level = mathx.Clamp(level+weatherRNG.NormalMS(0, 0.03), 0, storm)
			weather[s] = level
		}
		tr.Weather[day] = weather

		// Per-day multiplicative noise shared across all cells (city-wide
		// demand shocks) plus per-slot jitter.
		dayShockT := math.Exp(noiseRNG.NormalMS(0, 0.08))
		dayShockW := math.Exp(noiseRNG.NormalMS(0, 0.06))

		wl := make([]float64, c.SlotsPerDay*areas)
		tl := make([]float64, c.SlotsPerDay*areas)
		wc := make([]int, c.SlotsPerDay*areas)
		tc := make([]int, c.SlotsPerDay*areas)
		for s := 0; s < c.SlotsPerDay; s++ {
			// Rain raises taxi demand and suppresses supply.
			weatherTask := 1 + 0.5*weather[s]
			weatherWorker := 1 - 0.25*weather[s]
			slotShockT := math.Exp(noiseRNG.NormalMS(0, 0.05))
			slotShockW := math.Exp(noiseRNG.NormalMS(0, 0.05))
			tBase := float64(c.TasksPerDay) * taskTemporal[s] * dowTask * weatherTask * dayShockT * slotShockT
			wBase := float64(c.WorkersPerDay) * workerTemporal[s] * dowWorker * weatherWorker * dayShockW * slotShockW
			blend := morningBlend[s]
			for a := 0; a < areas; a++ {
				lt := tBase * (blend*morningShares[a] + (1-blend)*eveningShares[a])
				lw := wBase * workerSpatial[a]
				tl[s*areas+a] = lt
				wl[s*areas+a] = lw
				tc[s*areas+a] = countRNG.Poisson(lt)
				wc[s*areas+a] = countRNG.Poisson(lw)
			}
		}
		tr.workerLambda[day] = wl
		tr.taskLambda[day] = tl
		tr.WorkerCounts[day] = wc
		tr.TaskCounts[day] = tc
	}
	return tr, nil
}

// spatialShares evaluates the hotspot mixture at each cell center and
// normalises to a probability vector over areas.
func spatialShares(grid *geo.Grid, spots []hotspot) []float64 {
	shares := make([]float64, grid.NumCells())
	const background = 0.004 // uniform floor so no cell is impossible
	for cell := range shares {
		p := grid.Center(cell)
		v := background
		for _, h := range spots {
			d2 := p.SqDist(h.center)
			v += h.weight * math.Exp(-d2/(2*h.sigma*h.sigma))
		}
		shares[cell] = v
	}
	total := mathx.SumFloats(shares)
	for i := range shares {
		shares[i] /= total
	}
	return shares
}

// rushHourProfile returns a normalised per-slot share with morning (08:00)
// and evening (18:00) peaks; peakiness controls how much mass sits in the
// peaks versus the base load.
func rushHourProfile(slotsPerDay int, peakiness float64) []float64 {
	prof := make([]float64, slotsPerDay)
	for s := range prof {
		hour := float64(s) / float64(slotsPerDay) * 24
		morning := math.Exp(-sq(hour-8) / (2 * sq(1.4)))
		evening := math.Exp(-sq(hour-18) / (2 * sq(1.8)))
		night := 0.15 + 0.85*math.Exp(-sq(math.Mod(hour+12, 24)-12)/(2*sq(6)))
		prof[s] = night*(1-peakiness) + (morning+evening)*peakiness*2
	}
	total := mathx.SumFloats(prof)
	for i := range prof {
		prof[i] /= total
	}
	return prof
}

func sq(x float64) float64 { return x * x }

// Instance realizes the arrival stream of one day: each historical count
// becomes that many objects with locations uniform within the cell and
// times uniform within the slot. Dr may be overridden per experiment
// (the Figure 5(c,d,g,h,k,l) sweeps) by setting taskExpiry > 0; pass 0 to
// use the configured default.
func (tr *Trace) Instance(day int, taskExpiry float64) (*model.Instance, error) {
	if day < 0 || day >= tr.City.Days {
		return nil, fmt.Errorf("workload: day %d out of range [0,%d)", day, tr.City.Days)
	}
	if taskExpiry <= 0 {
		taskExpiry = tr.City.TaskExpiry
	}
	rng := mathx.NewRNG(tr.City.Seed ^ (uint64(day+1) * 0x9e3779b97f4a7c15))
	in := &model.Instance{
		Velocity: tr.City.Velocity,
		Bounds:   tr.Grid.Bounds,
		Horizon:  tr.Slots.Horizon,
	}
	areas := tr.Grid.NumCells()
	slotW := tr.Slots.Width()
	id := 0
	for s := 0; s < tr.City.SlotsPerDay; s++ {
		for a := 0; a < areas; a++ {
			rect := tr.Grid.CellRect(a)
			for k := 0; k < tr.WorkerCounts[day][s*areas+a]; k++ {
				in.Workers = append(in.Workers, model.Worker{
					ID:       id,
					Loc:      geo.Pt(rect.MinX+rng.Float64()*rect.Width(), rect.MinY+rng.Float64()*rect.Height()),
					Arrive:   (float64(s) + rng.Float64()) * slotW,
					Patience: tr.City.WorkerPatience,
				})
				id++
			}
		}
	}
	id = 0
	for s := 0; s < tr.City.SlotsPerDay; s++ {
		for a := 0; a < areas; a++ {
			rect := tr.Grid.CellRect(a)
			for k := 0; k < tr.TaskCounts[day][s*areas+a]; k++ {
				in.Tasks = append(in.Tasks, model.Task{
					ID:      id,
					Loc:     geo.Pt(rect.MinX+rng.Float64()*rect.Width(), rect.MinY+rng.Float64()*rect.Height()),
					Release: (float64(s) + rng.Float64()) * slotW,
					Expiry:  taskExpiry,
				})
				id++
			}
		}
	}
	return in, nil
}

// Lambda returns the generating intensities for one day (worker and task),
// exposed for tests and for the "oracle" prediction ablation.
func (tr *Trace) Lambda(day int) (worker, task []float64) {
	return tr.workerLambda[day], tr.taskLambda[day]
}
