package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"ftoa/internal/geo"
	"ftoa/internal/model"
)

// LoadInstanceCSV reads an instance from the CSV format ftoa-gen emits
// (and that users can produce from their own platform logs):
//
//	kind,id,x,y,time,window
//	worker,0,13.2,7.8,21.3,2.0
//	task,0,24.4,23.2,42.5,1.5
//
// kind is "worker" or "task"; time is the arrival/release time; window is
// the worker's patience Dw or the task's expiry Dr. velocity is the shared
// worker speed in space units per time unit. Bounds and horizon are
// derived from the data with a small margin unless every point is needed
// exactly; callers may adjust the returned instance before use.
func LoadInstanceCSV(r io.Reader, velocity float64) (*model.Instance, error) {
	if velocity <= 0 {
		return nil, fmt.Errorf("workload: non-positive velocity %v", velocity)
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 6
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: reading CSV header: %w", err)
	}
	if header[0] != "kind" {
		return nil, fmt.Errorf("workload: unexpected CSV header %v", header)
	}
	in := &model.Instance{Velocity: velocity}
	var minX, minY, maxX, maxY, maxTime float64
	first := true
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: reading CSV: %w", err)
		}
		line++
		id, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad id %q", line, rec[1])
		}
		var x, y, tm, win float64
		for i, dst := range []*float64{&x, &y, &tm, &win} {
			v, err := strconv.ParseFloat(rec[2+i], 64)
			if err != nil {
				return nil, fmt.Errorf("workload: line %d: bad number %q", line, rec[2+i])
			}
			*dst = v
		}
		if win < 0 {
			return nil, fmt.Errorf("workload: line %d: negative window %v", line, win)
		}
		switch rec[0] {
		case "worker":
			in.Workers = append(in.Workers, model.Worker{
				ID: id, Loc: geo.Pt(x, y), Arrive: tm, Patience: win,
			})
		case "task":
			in.Tasks = append(in.Tasks, model.Task{
				ID: id, Loc: geo.Pt(x, y), Release: tm, Expiry: win,
			})
		default:
			return nil, fmt.Errorf("workload: line %d: unknown kind %q", line, rec[0])
		}
		if first {
			minX, maxX, minY, maxY = x, x, y, y
			first = false
		} else {
			if x < minX {
				minX = x
			}
			if x > maxX {
				maxX = x
			}
			if y < minY {
				minY = y
			}
			if y > maxY {
				maxY = y
			}
		}
		if end := tm + win; end > maxTime {
			maxTime = end
		}
	}
	if first {
		return nil, fmt.Errorf("workload: CSV contains no objects")
	}
	// A touch of margin keeps boundary points inside the half-open bounds.
	margin := (maxX - minX + maxY - minY) * 0.005
	if margin <= 0 {
		margin = 1
	}
	in.Bounds = geo.NewRect(minX-margin, minY-margin, maxX+margin, maxY+margin)
	in.Horizon = maxTime
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// LoadCountsCSV reads a per-(day, slot, area) count history from the CSV
// format ftoa-gen -counts emits:
//
//	day,slot,area,workers,tasks,weather
//
// Dimensions are inferred from the maxima present; every (day, slot, area)
// triple must appear exactly once. It returns the flattened worker and task
// count tensors plus the per-(day, slot) weather series, ready for
// predict.NewSeries.
func LoadCountsCSV(r io.Reader) (days, slots, areas int, workers, tasks []int, weather []float64, err error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 6
	header, err := cr.Read()
	if err != nil {
		return 0, 0, 0, nil, nil, nil, fmt.Errorf("workload: reading CSV header: %w", err)
	}
	if header[0] != "day" {
		return 0, 0, 0, nil, nil, nil, fmt.Errorf("workload: unexpected CSV header %v", header)
	}
	type rec struct {
		day, slot, area, w, t int
		wx                    float64
	}
	var recs []rec
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, 0, 0, nil, nil, nil, fmt.Errorf("workload: reading CSV: %w", err)
		}
		var rr rec
		for i, dst := range []*int{&rr.day, &rr.slot, &rr.area, &rr.w, &rr.t} {
			v, err := strconv.Atoi(row[i])
			if err != nil {
				return 0, 0, 0, nil, nil, nil, fmt.Errorf("workload: bad integer %q", row[i])
			}
			*dst = v
		}
		wx, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			return 0, 0, 0, nil, nil, nil, fmt.Errorf("workload: bad weather %q", row[5])
		}
		rr.wx = wx
		if rr.day < 0 || rr.slot < 0 || rr.area < 0 || rr.w < 0 || rr.t < 0 {
			return 0, 0, 0, nil, nil, nil, fmt.Errorf("workload: negative field in %v", row)
		}
		if rr.day >= days {
			days = rr.day + 1
		}
		if rr.slot >= slots {
			slots = rr.slot + 1
		}
		if rr.area >= areas {
			areas = rr.area + 1
		}
		recs = append(recs, rr)
	}
	if len(recs) != days*slots*areas {
		return 0, 0, 0, nil, nil, nil,
			fmt.Errorf("workload: %d rows for %d×%d×%d cells", len(recs), days, slots, areas)
	}
	workers = make([]int, days*slots*areas)
	tasks = make([]int, days*slots*areas)
	weather = make([]float64, days*slots)
	seen := make([]bool, days*slots*areas)
	for _, rr := range recs {
		flat := (rr.day*slots+rr.slot)*areas + rr.area
		if seen[flat] {
			return 0, 0, 0, nil, nil, nil,
				fmt.Errorf("workload: duplicate cell (%d,%d,%d)", rr.day, rr.slot, rr.area)
		}
		seen[flat] = true
		workers[flat] = rr.w
		tasks[flat] = rr.t
		weather[rr.day*slots+rr.slot] = rr.wx
	}
	return days, slots, areas, workers, tasks, weather, nil
}
