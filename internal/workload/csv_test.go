package workload

import (
	"strconv"
	"strings"
	"testing"
)

func TestLoadInstanceCSVRoundTrip(t *testing.T) {
	csvData := `kind,id,x,y,time,window
worker,0,1.5,2.5,0.0,2.0
worker,1,10.0,10.0,1.0,3.0
task,0,2.0,2.0,0.5,1.0
task,1,9.5,10.5,2.0,1.5
`
	in, err := LoadInstanceCSV(strings.NewReader(csvData), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Workers) != 2 || len(in.Tasks) != 2 {
		t.Fatalf("loaded %d workers, %d tasks", len(in.Workers), len(in.Tasks))
	}
	if in.Workers[1].Loc.X != 10 || in.Workers[1].Patience != 3 {
		t.Errorf("worker 1 = %+v", in.Workers[1])
	}
	if in.Tasks[0].Release != 0.5 || in.Tasks[0].Expiry != 1 {
		t.Errorf("task 0 = %+v", in.Tasks[0])
	}
	if in.Velocity != 5 {
		t.Errorf("velocity = %v", in.Velocity)
	}
	// Bounds must contain every point.
	for i := range in.Workers {
		if !in.Bounds.Contains(in.Workers[i].Loc) {
			t.Errorf("worker %d outside bounds", i)
		}
	}
	for i := range in.Tasks {
		if !in.Bounds.Contains(in.Tasks[i].Loc) {
			t.Errorf("task %d outside bounds", i)
		}
	}
	// Horizon covers the latest deadline.
	if in.Horizon < 4 {
		t.Errorf("horizon = %v, want ≥ 4", in.Horizon)
	}
}

func TestLoadInstanceCSVRejectsGarbage(t *testing.T) {
	cases := []string{
		"",                          // empty
		"nope,id,x,y,time,window\n", // wrong header
		"kind,id,x,y,time,window\nfrog,0,1,1,1,1",    // unknown kind
		"kind,id,x,y,time,window\nworker,x,1,1,1,1",  // bad id
		"kind,id,x,y,time,window\nworker,0,?,1,1,1",  // bad number
		"kind,id,x,y,time,window\nworker,0,1,1,1,-2", // negative window
		"kind,id,x,y,time,window\n",                  // no objects
		"kind,id,x,y,time,window\nworker,0,1,1,1",    // wrong field count
	}
	for i, c := range cases {
		if _, err := LoadInstanceCSV(strings.NewReader(c), 1); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	good := "kind,id,x,y,time,window\nworker,0,1,1,1,1\n"
	if _, err := LoadInstanceCSV(strings.NewReader(good), 0); err == nil {
		t.Error("zero velocity accepted")
	}
}

func TestLoadCountsCSVRoundTrip(t *testing.T) {
	csvData := `day,slot,area,workers,tasks,weather
0,0,0,3,4,0.1
0,0,1,1,0,0.1
0,1,0,2,2,0.5
0,1,1,0,1,0.5
1,0,0,5,6,0.0
1,0,1,2,3,0.0
1,1,0,1,1,0.2
1,1,1,4,4,0.2
`
	days, slots, areas, workers, tasks, weather, err := LoadCountsCSV(strings.NewReader(csvData))
	if err != nil {
		t.Fatal(err)
	}
	if days != 2 || slots != 2 || areas != 2 {
		t.Fatalf("dims %d×%d×%d", days, slots, areas)
	}
	if workers[0] != 3 || tasks[0] != 4 {
		t.Errorf("cell (0,0,0) = %d/%d", workers[0], tasks[0])
	}
	if workers[(1*2+1)*2+1] != 4 {
		t.Errorf("cell (1,1,1) worker = %d", workers[(1*2+1)*2+1])
	}
	if weather[1*2+1] != 0.2 {
		t.Errorf("weather (1,1) = %v", weather[3])
	}
}

func TestLoadCountsCSVRejectsGarbage(t *testing.T) {
	cases := []string{
		"day,slot,area,workers,tasks,weather\n0,0,0,1,1,0.1\n0,0,0,2,2,0.1\n", // duplicate
		"day,slot,area,workers,tasks,weather\n0,0,1,1,1,0.1\n",                // missing cell (0,0,0)
		"day,slot,area,workers,tasks,weather\n0,0,0,-1,1,0.1\n",               // negative
		"day,slot,area,workers,tasks,weather\nx,0,0,1,1,0.1\n",                // bad int
		"nope\n", // header
	}
	for i, c := range cases {
		if _, _, _, _, _, _, err := LoadCountsCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestGenLoadRoundTrip: counts emitted by a trace survive the round trip
// through the CSV format into predict-ready tensors.
func TestGenLoadRoundTrip(t *testing.T) {
	c := Beijing()
	c.Days = 2
	c.Cols, c.Rows = 3, 3
	c.SlotsPerDay = 4
	c.WorkersPerDay = 200
	c.TasksPerDay = 200
	tr, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("day,slot,area,workers,tasks,weather\n")
	areas := tr.Grid.NumCells()
	for d := 0; d < c.Days; d++ {
		for s := 0; s < c.SlotsPerDay; s++ {
			for a := 0; a < areas; a++ {
				sb.WriteString(
					intStr(d) + "," + intStr(s) + "," + intStr(a) + "," +
						intStr(tr.WorkerCounts[d][s*areas+a]) + "," +
						intStr(tr.TaskCounts[d][s*areas+a]) + ",0.0\n")
			}
		}
	}
	days, slots, gotAreas, workers, _, _, err := LoadCountsCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if days != c.Days || slots != c.SlotsPerDay || gotAreas != areas {
		t.Fatalf("dims %d×%d×%d", days, slots, gotAreas)
	}
	for d := 0; d < days; d++ {
		for i, v := range tr.WorkerCounts[d] {
			if workers[d*slots*areas+i] != v {
				t.Fatalf("day %d cell %d: %d != %d", d, i, workers[d*slots*areas+i], v)
			}
		}
	}
}

func intStr(v int) string { return strconv.Itoa(v) }
