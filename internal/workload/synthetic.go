// Package workload generates the problem instances of Section 6.1: the
// synthetic workloads of Table 4 (Normal temporal distribution,
// multivariate-Normal spatial distribution over a square space) and the
// multi-day city traces that stand in for the proprietary Didi taxi-calling
// datasets (see DESIGN.md §5 for the substitution rationale).
//
// Time is measured in slot units of the default configuration (1 unit = one
// 15-minute slot), so the paper's parameters carry over unchanged: the
// horizon is 48 units (12 h), the default worker velocity is 5 space units
// per time unit ("5 grids per slot"), and deadlines Dr ∈ [1, 3] are in the
// same units.
package workload

import (
	"fmt"
	"math"

	"ftoa/internal/geo"
	"ftoa/internal/mathx"
	"ftoa/internal/model"
	"ftoa/internal/timeslot"
)

// Synthetic configures the Table 4 generator. All fractional parameters
// (TempMu, TempSigma, SpatialMean, SpatialCov) follow the paper's
// convention: the effective value is the fraction times the horizon (for
// temporal) or times the space side length (for spatial mean) or times the
// side length as variance (for spatial covariance diagonal).
type Synthetic struct {
	NumWorkers int
	NumTasks   int

	Space   float64 // side length of the square space (default 50)
	Horizon float64 // timeline length in slot units (default 48)

	WorkerPatience float64 // Dw in slot units (default 2)
	TaskExpiry     float64 // Dr in slot units (default 2)
	Velocity       float64 // space units per slot unit (default 5)

	// Worker distributions are fixed in the paper's experiments; task
	// distributions are the swept parameters.
	WorkerTempMu, WorkerTempSigma       float64 // defaults 0.25, 0.25
	TaskTempMu, TaskTempSigma           float64 // defaults 0.5, 0.5
	WorkerSpatialMean, WorkerSpatialCov float64 // defaults 0.25, 0.25
	TaskSpatialMean, TaskSpatialCov     float64 // defaults 0.5, 0.5

	Seed uint64
}

// DefaultSynthetic returns the bold defaults of Table 4.
func DefaultSynthetic() Synthetic {
	return Synthetic{
		NumWorkers:        20000,
		NumTasks:          20000,
		Space:             50,
		Horizon:           48,
		WorkerPatience:    2,
		TaskExpiry:        2,
		Velocity:          5,
		WorkerTempMu:      0.25,
		WorkerTempSigma:   0.25,
		TaskTempMu:        0.5,
		TaskTempSigma:     0.5,
		WorkerSpatialMean: 0.25,
		WorkerSpatialCov:  0.25,
		TaskSpatialMean:   0.5,
		TaskSpatialCov:    0.5,
		Seed:              1,
	}
}

// Validate reports the first configuration problem.
func (c Synthetic) Validate() error {
	switch {
	case c.NumWorkers < 0 || c.NumTasks < 0:
		return fmt.Errorf("workload: negative population")
	case c.Space <= 0:
		return fmt.Errorf("workload: non-positive space %v", c.Space)
	case c.Horizon <= 0:
		return fmt.Errorf("workload: non-positive horizon %v", c.Horizon)
	case c.Velocity <= 0:
		return fmt.Errorf("workload: non-positive velocity %v", c.Velocity)
	case c.WorkerPatience < 0 || c.TaskExpiry < 0:
		return fmt.Errorf("workload: negative deadline")
	}
	return nil
}

// Bounds returns the spatial bounds of the generated instances.
func (c Synthetic) Bounds() geo.Rect { return geo.NewRect(0, 0, c.Space, c.Space) }

// Generate draws one instance. The draw is deterministic in Seed.
func (c Synthetic) Generate() (*model.Instance, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := mathx.NewRNG(c.Seed)
	tempRNG := rng.Split()
	spatRNG := rng.Split()

	in := &model.Instance{
		Velocity: c.Velocity,
		Bounds:   c.Bounds(),
		Horizon:  c.Horizon,
	}
	in.Workers = make([]model.Worker, c.NumWorkers)
	for i := range in.Workers {
		in.Workers[i] = model.Worker{
			ID:       i,
			Arrive:   c.sampleTime(tempRNG, c.WorkerTempMu, c.WorkerTempSigma),
			Loc:      c.sampleLoc(spatRNG, c.WorkerSpatialMean, c.WorkerSpatialCov),
			Patience: c.WorkerPatience,
		}
	}
	in.Tasks = make([]model.Task, c.NumTasks)
	for i := range in.Tasks {
		in.Tasks[i] = model.Task{
			ID:      i,
			Release: c.sampleTime(tempRNG, c.TaskTempMu, c.TaskTempSigma),
			Loc:     c.sampleLoc(spatRNG, c.TaskSpatialMean, c.TaskSpatialCov),
			Expiry:  c.TaskExpiry,
		}
	}
	return in, nil
}

// sampleTime draws an arrival time from Normal(muFrac·H, (sigmaFrac·H)²)
// truncated into [0, H).
func (c Synthetic) sampleTime(rng *mathx.RNG, muFrac, sigmaFrac float64) float64 {
	t := rng.TruncNormal(muFrac*c.Horizon, sigmaFrac*c.Horizon, 0, c.Horizon)
	// TruncNormal is inclusive of the upper bound; the timeline is [0, H).
	if t >= c.Horizon {
		t = math.Nextafter(c.Horizon, 0)
	}
	return t
}

// sampleLoc draws a location from the paper's multivariate Normal: mean
// meanFrac·(S, S), covariance diag(covFrac·S, covFrac·S), truncated into
// the square space by rejection (coordinates are independent, so marginal
// truncation is exact).
func (c Synthetic) sampleLoc(rng *mathx.RNG, meanFrac, covFrac float64) geo.Point {
	sigma := math.Sqrt(covFrac * c.Space)
	x := rng.TruncNormal(meanFrac*c.Space, sigma, 0, c.Space)
	y := rng.TruncNormal(meanFrac*c.Space, sigma, 0, c.Space)
	if x >= c.Space {
		x = math.Nextafter(c.Space, 0)
	}
	if y >= c.Space {
		y = math.Nextafter(c.Space, 0)
	}
	return geo.Pt(x, y)
}

// ExpectedCounts returns the exact expected per-(slot, area) counts of the
// configured distributions, integerised so the totals equal NumWorkers and
// NumTasks — the a[i][j] and b[i][j] an ideal predictor would output under
// the i.i.d. model (Definition 5), which is what the synthetic experiments
// feed the guide.
func (c Synthetic) ExpectedCounts(grid *geo.Grid, slots *timeslot.Slotting) (workers, tasks []int) {
	workers = expectedCellCounts(grid, slots, c.NumWorkers,
		c.WorkerTempMu*c.Horizon, c.WorkerTempSigma*c.Horizon,
		c.WorkerSpatialMean*c.Space, math.Sqrt(c.WorkerSpatialCov*c.Space),
		c.Horizon, c.Space)
	tasks = expectedCellCounts(grid, slots, c.NumTasks,
		c.TaskTempMu*c.Horizon, c.TaskTempSigma*c.Horizon,
		c.TaskSpatialMean*c.Space, math.Sqrt(c.TaskSpatialCov*c.Space),
		c.Horizon, c.Space)
	return workers, tasks
}

// expectedCellCounts computes P(slot)·P(col)·P(row) per cell from the
// truncated Normal marginals and rounds to integers summing to total.
func expectedCellCounts(grid *geo.Grid, slots *timeslot.Slotting, total int,
	tMu, tSigma, sMu, sSigma, horizon, space float64) []int {

	slotP := truncNormalBinProbs(tMu, tSigma, 0, horizon, slots.Count)
	colP := truncNormalBinProbs(sMu, sSigma, 0, space, grid.Cols)
	rowP := truncNormalBinProbs(sMu, sSigma, 0, space, grid.Rows)

	weights := make([]float64, slots.Count*grid.NumCells())
	for s := 0; s < slots.Count; s++ {
		for r := 0; r < grid.Rows; r++ {
			for col := 0; col < grid.Cols; col++ {
				weights[s*grid.NumCells()+r*grid.Cols+col] = slotP[s] * rowP[r] * colP[col]
			}
		}
	}
	return mathx.LargestRemainderRound(weights, total)
}

// truncNormalBinProbs splits [lo, hi] into n equal bins and returns the
// probability mass of Normal(mu, sigma²) truncated to [lo, hi] in each bin.
func truncNormalBinProbs(mu, sigma, lo, hi float64, n int) []float64 {
	probs := make([]float64, n)
	if sigma <= 0 {
		// Point mass at mu.
		idx := int((mu - lo) / (hi - lo) * float64(n))
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		probs[idx] = 1
		return probs
	}
	cdf := func(x float64) float64 {
		return 0.5 * (1 + math.Erf((x-mu)/(sigma*math.Sqrt2)))
	}
	totalMass := cdf(hi) - cdf(lo)
	if totalMass <= 0 {
		// Degenerate truncation: fall back to the nearest bin.
		return truncNormalBinProbs(mathx.Clamp(mu, lo, hi), 0, lo, hi, n)
	}
	width := (hi - lo) / float64(n)
	prev := cdf(lo)
	for i := 0; i < n; i++ {
		next := cdf(lo + float64(i+1)*width)
		probs[i] = (next - prev) / totalMass
		prev = next
	}
	return probs
}
