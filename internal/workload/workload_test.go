package workload

import (
	"math"
	"testing"

	"ftoa/internal/geo"
	"ftoa/internal/mathx"
	"ftoa/internal/timeslot"
)

func TestSyntheticGenerateBasics(t *testing.T) {
	cfg := DefaultSynthetic()
	cfg.NumWorkers = 2000
	cfg.NumTasks = 1500
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(in.Workers) != 2000 || len(in.Tasks) != 1500 {
		t.Fatalf("sizes %d/%d", len(in.Workers), len(in.Tasks))
	}
	for i := range in.Workers {
		w := &in.Workers[i]
		if w.Arrive < 0 || w.Arrive >= cfg.Horizon {
			t.Fatalf("worker %d arrival %v out of horizon", i, w.Arrive)
		}
		if !in.Bounds.Contains(w.Loc) {
			t.Fatalf("worker %d location %v out of bounds", i, w.Loc)
		}
		if w.Patience != cfg.WorkerPatience {
			t.Fatalf("worker %d patience %v", i, w.Patience)
		}
	}
	for i := range in.Tasks {
		r := &in.Tasks[i]
		if r.Release < 0 || r.Release >= cfg.Horizon {
			t.Fatalf("task %d release %v out of horizon", i, r.Release)
		}
		if !in.Bounds.Contains(r.Loc) {
			t.Fatalf("task %d location %v out of bounds", i, r.Loc)
		}
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	cfg := DefaultSynthetic()
	cfg.NumWorkers, cfg.NumTasks = 500, 500
	a, _ := cfg.Generate()
	b, _ := cfg.Generate()
	for i := range a.Workers {
		if a.Workers[i] != b.Workers[i] {
			t.Fatal("same seed produced different workers")
		}
	}
	cfg2 := cfg
	cfg2.Seed = cfg.Seed + 1
	c, _ := cfg2.Generate()
	same := 0
	for i := range a.Workers {
		if a.Workers[i].Loc == c.Workers[i].Loc {
			same++
		}
	}
	if same == len(a.Workers) {
		t.Fatal("different seeds produced identical instances")
	}
}

func TestSyntheticValidation(t *testing.T) {
	bad := DefaultSynthetic()
	bad.NumWorkers = -1
	if _, err := bad.Generate(); err == nil {
		t.Error("negative population accepted")
	}
	bad = DefaultSynthetic()
	bad.Velocity = 0
	if _, err := bad.Generate(); err == nil {
		t.Error("zero velocity accepted")
	}
	bad = DefaultSynthetic()
	bad.Horizon = -5
	if _, err := bad.Generate(); err == nil {
		t.Error("negative horizon accepted")
	}
}

func TestExpectedCountsMatchEmpirical(t *testing.T) {
	cfg := DefaultSynthetic()
	cfg.NumWorkers = 30000
	cfg.NumTasks = 30000
	grid := geo.NewGrid(cfg.Bounds(), 10, 10)
	slots := timeslot.New(cfg.Horizon, 8)

	wantW, wantT := cfg.ExpectedCounts(grid, slots)
	if mathx.SumInts(wantW) != cfg.NumWorkers || mathx.SumInts(wantT) != cfg.NumTasks {
		t.Fatalf("expected counts do not sum to totals: %d, %d", mathx.SumInts(wantW), mathx.SumInts(wantT))
	}

	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	gotW := make([]int, len(wantW))
	areas := grid.NumCells()
	for i := range in.Workers {
		s := slots.SlotOf(in.Workers[i].Arrive)
		a := grid.CellOf(in.Workers[i].Loc)
		gotW[s*areas+a]++
	}
	// Compare aggregate deviation: with 30k draws the realized counts
	// should track expectations closely in L1.
	l1 := 0.0
	for i := range wantW {
		l1 += math.Abs(float64(wantW[i] - gotW[i]))
	}
	if rel := l1 / float64(cfg.NumWorkers); rel > 0.15 {
		t.Errorf("L1 deviation between expected and empirical counts = %.3f of total, want < 0.15", rel)
	}
}

func TestExpectedCountsConcentratedWhereConfigured(t *testing.T) {
	cfg := DefaultSynthetic()
	cfg.NumTasks = 10000
	grid := geo.NewGrid(cfg.Bounds(), 10, 10)
	slots := timeslot.New(cfg.Horizon, 4)
	_, tasks := cfg.ExpectedCounts(grid, slots)
	areas := grid.NumCells()
	// Task spatial mean is 0.5·50 = 25 → cell (5,5); temporal mean slot 2.
	peakCell := 5*grid.Cols + 5
	peak := tasks[2*areas+peakCell]
	corner := tasks[0*areas+0]
	if peak <= corner {
		t.Errorf("peak cell count %d not above corner %d", peak, corner)
	}
	if peak == 0 {
		t.Error("peak cell empty")
	}
}

func TestTruncNormalBinProbs(t *testing.T) {
	probs := truncNormalBinProbs(5, 2, 0, 10, 10)
	sum := 0.0
	for _, p := range probs {
		if p < 0 {
			t.Fatalf("negative probability %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	// Symmetric around the middle.
	for i := 0; i < 5; i++ {
		if math.Abs(probs[i]-probs[9-i]) > 1e-9 {
			t.Errorf("asymmetry at bin %d: %v vs %v", i, probs[i], probs[9-i])
		}
	}
	// Degenerate sigma: point mass.
	probs = truncNormalBinProbs(7.2, 0, 0, 10, 10)
	if probs[7] != 1 {
		t.Errorf("point mass not in bin 7: %v", probs)
	}
	// Far-away mean: degenerate truncation falls back to nearest bin.
	probs = truncNormalBinProbs(1e9, 1e-12, 0, 10, 10)
	if probs[9] != 1 {
		t.Errorf("degenerate truncation: %v", probs)
	}
}

func TestCityTraceShape(t *testing.T) {
	c := Beijing()
	c.Days = 10
	c.WorkersPerDay = 3000
	c.TasksPerDay = 3200
	tr, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.WorkerCounts) != 10 || len(tr.TaskCounts) != 10 {
		t.Fatalf("history days %d/%d", len(tr.WorkerCounts), len(tr.TaskCounts))
	}
	areas := tr.Grid.NumCells()
	if areas != 600 {
		t.Fatalf("areas = %d, want 600", areas)
	}
	for day := 0; day < 10; day++ {
		if len(tr.WorkerCounts[day]) != c.SlotsPerDay*areas {
			t.Fatalf("day %d counts length %d", day, len(tr.WorkerCounts[day]))
		}
		total := mathx.SumInts(tr.TaskCounts[day])
		// Poisson totals should be within a factor of the configured scale
		// (weekends and weather can pull them down).
		if total < c.TasksPerDay/3 || total > c.TasksPerDay*2 {
			t.Errorf("day %d task total %d wildly off %d", day, total, c.TasksPerDay)
		}
		for s := 0; s < c.SlotsPerDay; s++ {
			w := tr.Weather[day][s]
			if w < 0 || w > 1 {
				t.Fatalf("weather out of range: %v", w)
			}
		}
	}
	// Weekend effect: average weekday task total above average weekend.
	wd, we := 0.0, 0.0
	nwd, nwe := 0, 0
	for day := 0; day < 10; day++ {
		tot := float64(mathx.SumInts(tr.TaskCounts[day]))
		if tr.DayOfWeek[day] >= 5 {
			we += tot
			nwe++
		} else {
			wd += tot
			nwd++
		}
	}
	if nwd > 0 && nwe > 0 && wd/float64(nwd) <= we/float64(nwe) {
		t.Errorf("weekday average %v not above weekend average %v", wd/float64(nwd), we/float64(nwe))
	}
}

func TestCityTraceInstance(t *testing.T) {
	c := Hangzhou()
	c.Days = 3
	c.WorkersPerDay = 1000
	c.TasksPerDay = 1100
	tr, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	in, err := tr.Instance(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(in.Workers) != mathx.SumInts(tr.WorkerCounts[2]) {
		t.Errorf("instance workers %d != counts %d", len(in.Workers), mathx.SumInts(tr.WorkerCounts[2]))
	}
	areas := tr.Grid.NumCells()
	// Every object must lie in the cell and slot of its generating count.
	gotW := make([]int, c.SlotsPerDay*areas)
	for i := range in.Workers {
		s := tr.Slots.SlotOf(in.Workers[i].Arrive)
		a := tr.Grid.CellOf(in.Workers[i].Loc)
		gotW[s*areas+a]++
	}
	for i := range gotW {
		if gotW[i] != tr.WorkerCounts[2][i] {
			t.Fatalf("realized counts diverge from history at flat index %d: %d vs %d", i, gotW[i], tr.WorkerCounts[2][i])
		}
	}
	// Expiry override.
	in2, err := tr.Instance(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if in2.Tasks[0].Expiry != 0.5 {
		t.Errorf("expiry override not applied: %v", in2.Tasks[0].Expiry)
	}
	// Out-of-range day.
	if _, err := tr.Instance(5, 0); err == nil {
		t.Error("out-of-range day accepted")
	}
}

func TestCityTraceRushHours(t *testing.T) {
	c := Beijing()
	c.Days = 7
	c.WorkersPerDay = 5000
	c.TasksPerDay = 5000
	tr, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	areas := tr.Grid.NumCells()
	// Aggregate per-slot task totals across days; the 8:00 rush slot must
	// be busier than the 3:00 night slot.
	slotTotal := func(hour int) int {
		s := hour * c.SlotsPerDay / 24
		total := 0
		for day := 0; day < c.Days; day++ {
			for a := 0; a < areas; a++ {
				total += tr.TaskCounts[day][s*areas+a]
			}
		}
		return total
	}
	if rush, night := slotTotal(8), slotTotal(3); rush <= night {
		t.Errorf("rush-hour slot total %d not above night %d", rush, night)
	}
}

func TestCityValidation(t *testing.T) {
	for _, mutate := range []func(*City){
		func(c *City) { c.Cols = 0 },
		func(c *City) { c.Days = 0 },
		func(c *City) { c.SlotsPerDay = -1 },
		func(c *City) { c.WorkersPerDay = -1 },
		func(c *City) { c.Hotspots = 0 },
		func(c *City) { c.Velocity = 0 },
	} {
		c := Beijing()
		mutate(&c)
		if _, err := c.Generate(); err == nil {
			t.Errorf("invalid city config accepted: %+v", c)
		}
	}
}

func TestLambdaExposed(t *testing.T) {
	c := Beijing()
	c.Days = 2
	c.WorkersPerDay = 500
	c.TasksPerDay = 500
	tr, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	w, task := tr.Lambda(1)
	if len(w) != c.SlotsPerDay*tr.Grid.NumCells() || len(task) != len(w) {
		t.Fatal("lambda lengths")
	}
	for _, v := range task {
		if v < 0 {
			t.Fatal("negative intensity")
		}
	}
}
