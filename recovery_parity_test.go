package ftoa_test

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"ftoa"
)

// recoveryGuide builds the learned-shape guide the guided algorithms
// (POLAR, POLAR-OP, Hybrid) share across the parity runs.
func recoveryGuide(t *testing.T, cfg ftoa.Synthetic) *ftoa.Guide {
	t.Helper()
	grid := ftoa.NewGrid(cfg.Bounds(), 8, 8)
	slots := ftoa.NewSlotting(cfg.Horizon, 12)
	wc, tc := cfg.ExpectedCounts(grid, slots)
	g, err := ftoa.BuildGuide(ftoa.GuideConfig{
		Grid:           grid,
		Slots:          slots,
		Velocity:       cfg.Velocity,
		WorkerPatience: cfg.WorkerPatience,
		TaskExpiry:     cfg.TaskExpiry,
		RepSlack:       slots.Width() / 2,
	}, wc, tc)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// driveArrivals feeds instance events [lo, hi) into a router.
func driveArrivals(t *testing.T, r *ftoa.ShardRouter, in *ftoa.Instance, lo, hi int) {
	t.Helper()
	events := in.Events()
	for i := lo; i < hi; i++ {
		var err error
		switch ev := events[i]; ev.Kind {
		case ftoa.WorkerArrival:
			_, _, err = r.AddWorker(in.Workers[ev.Index])
		case ftoa.TaskArrival:
			_, _, err = r.AddTask(in.Tasks[ev.Index])
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

func mergedStream(t *testing.T, r *ftoa.ShardRouter) []ftoa.ShardEvent {
	t.Helper()
	evs, _, err := r.Events(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

// matchedSet extracts the committed pairs (by home identity) from a merged
// stream, in commit order.
func matchedSet(evs []ftoa.ShardEvent) [][4]int {
	var out [][4]int
	for _, ev := range evs {
		if ev.Kind == ftoa.EventMatch {
			out = append(out, [4]int{ev.WorkerShard, ev.Worker, ev.TaskShard, ev.Task})
		}
	}
	return out
}

// TestRecoveryParityGate is the durability acceptance gate: for every
// online algorithm, both validation modes, and both a single-shard and a
// 4×4 halo router, a WAL-logged router killed mid-stream (its log simply
// abandoned, never closed — SyncAlways makes every acknowledged operation
// durable) must recover into a router whose merged event stream, matched
// set and per-shard stats are bit-identical to an unlogged control at the
// kill point, and must stay bit-identical through the rest of the stream
// and Finish.
func TestRecoveryParityGate(t *testing.T) {
	cfg := ftoa.DefaultSynthetic()
	cfg.NumWorkers, cfg.NumTasks = 300, 300
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	g := recoveryGuide(t, cfg)
	halo := ftoa.HaloForWindow(cfg.Velocity, cfg.TaskExpiry) / 4

	algs := []struct {
		name string
		mk   func() ftoa.Algorithm
	}{
		{"POLAR", func() ftoa.Algorithm { return ftoa.NewPOLAR(g) }},
		{"POLAR-OP", func() ftoa.Algorithm { return ftoa.NewPOLAROP(g) }},
		{"SimpleGreedy", func() ftoa.Algorithm { return ftoa.NewSimpleGreedy() }},
		{"GR", func() ftoa.Algorithm { return ftoa.NewGR(cfg.Horizon / 40) }},
		{"Hybrid", func() ftoa.Algorithm { return ftoa.NewHybrid(g) }},
		{"TGOA", func() ftoa.Algorithm { return ftoa.NewTGOA() }},
	}
	grids := []struct {
		name       string
		cols, rows int
		halo       float64
	}{
		{"1x1", 1, 1, 0},
		{"4x4-halo", 4, 4, halo},
	}
	events := in.Events()
	cut := len(events) * 3 / 5

	for _, gr := range grids {
		for _, mode := range []ftoa.Mode{ftoa.AssumeGuide, ftoa.Strict} {
			for _, a := range algs {
				t.Run(fmt.Sprintf("%s/%s/%s", gr.name, mode, a.name), func(t *testing.T) {
					base := ftoa.ShardConfig{
						Matcher: ftoa.MatcherConfig{
							Mode:     mode,
							Velocity: in.Velocity,
							Bounds:   in.Bounds,
							Hints: ftoa.Hints{
								ExpectedWorkers: len(in.Workers),
								ExpectedTasks:   len(in.Tasks),
								Horizon:         in.Horizon,
							},
						},
						Cols:           gr.cols,
						Rows:           gr.rows,
						Halo:           gr.halo,
						NewAlgorithm:   a.mk,
						RetireInterval: in.Horizon / 4,
					}
					control, err := ftoa.NewShardRouter(base)
					if err != nil {
						t.Fatal(err)
					}
					logged := base
					logged.WAL = &ftoa.WALOptions{
						Dir:    filepath.Join(t.TempDir(), "wal"),
						Policy: ftoa.WALSyncAlways,
					}
					walled, err := ftoa.NewShardRouter(logged)
					if err != nil {
						t.Fatal(err)
					}

					driveArrivals(t, control, in, 0, cut)
					driveArrivals(t, walled, in, 0, cut)
					// Kill: abandon the logged router. No flush, no close —
					// SyncAlways already made every acknowledged group durable.
					walled = nil

					rec, info, err := ftoa.RecoverShardRouter(logged)
					if err != nil {
						t.Fatal(err)
					}
					defer rec.WALClose()
					if !info.Recovered || info.Generation != 2 {
						t.Fatalf("info = %+v", info)
					}
					ce, re := mergedStream(t, control), mergedStream(t, rec)
					if !reflect.DeepEqual(ce, re) {
						t.Fatalf("merged stream diverges at kill point: control %d events, recovered %d", len(ce), len(re))
					}
					if !reflect.DeepEqual(matchedSet(ce), matchedSet(re)) {
						t.Fatal("matched set diverges at kill point")
					}
					if info.Matches != len(matchedSet(re)) {
						t.Fatalf("info.Matches = %d, stream has %d", info.Matches, len(matchedSet(re)))
					}

					driveArrivals(t, control, in, cut, len(events))
					driveArrivals(t, rec, in, cut, len(events))
					control.Finish()
					rec.Finish()
					ce, re = mergedStream(t, control), mergedStream(t, rec)
					if !reflect.DeepEqual(ce, re) {
						t.Fatalf("merged stream diverges after continuation: control %d events, recovered %d", len(ce), len(re))
					}
					ms := matchedSet(re)
					if !reflect.DeepEqual(matchedSet(ce), ms) {
						t.Fatal("matched set diverges after continuation")
					}
					if len(ms) == 0 {
						t.Fatal("degenerate parity: no matches committed")
					}
					if !reflect.DeepEqual(control.StatsAll(nil), rec.StatsAll(nil)) {
						t.Fatal("per-shard stats diverge after continuation")
					}
					if err := rec.WALErr(); err != nil {
						t.Fatalf("WAL error: %v", err)
					}
				})
			}
		}
	}
}
